//! The multicore simulation engine.
//!
//! [`Machine`] assembles per-thread cores (instruction window, MSHRs, cache
//! hierarchy, stream prefetcher), a shared [`MemoryController`], and I/O
//! injection, then interleaves threads in simulated-time order. Memory-level
//! parallelism — and therefore the blocking factor the calibration recovers —
//! *emerges* from the window/MSHR limits and the dependence structure of the
//! instruction stream, rather than being dialed in.

use std::collections::{BTreeMap, VecDeque};

use crate::cache::{CacheHierarchy, HitLevel};
use crate::config::SimConfig;
use crate::counters::{CoreCounters, Measurement, PhaseCounts, Sample};
use crate::mem::MemoryController;
use crate::prefetch::StreamPrefetcher;
use crate::tlb::Tlb;
use crate::trace::{AccessKind, BoxedStream, OpBlock};
use crate::SimError;

/// Fraction of the hit latency an *independent* access exposes to the core
/// (the pipeline overlaps most of it); dependent accesses expose all of it.
const INDEPENDENT_HIT_EXPOSURE: f64 = 0.25;

/// Maximum prefetched lines in flight per core before the prefetcher backs
/// off (models the prefetch queue of the real part).
const MAX_PENDING_PREFETCHES: usize = 64;

/// Ops executed per scheduling quantum before re-electing the laggard core.
const BATCH_OPS: u32 = 32;

/// Slot count of the per-core prefetch table. Twice
/// [`MAX_PENDING_PREFETCHES`], so the load factor never exceeds 0.5 and
/// probe chains stay short. Must be a power of two.
const PREFETCH_SLOTS: usize = 2 * MAX_PENDING_PREFETCHES;

/// Sentinel for an empty prefetch-table slot. Line addresses are byte
/// addresses shifted down by `line_shift ≥ 1`, so no real key collides.
const PREFETCH_EMPTY: u64 = u64::MAX;

/// A fixed-capacity open-addressed map from in-flight prefetched line
/// address to memory completion time.
///
/// Replaces a `HashMap<u64, f64>` on the engine's per-access hot path:
/// fibonacci-hashed linear probing over two flat arrays, no allocation, no
/// SipHash. Deletion uses backward shifting, so no tombstones accumulate.
/// Semantics match the map it replaced: `insert` overwrites an existing
/// key, `len` counts distinct keys.
struct PrefetchTable {
    keys: [u64; PREFETCH_SLOTS],
    vals: [f64; PREFETCH_SLOTS],
    len: usize,
}

impl PrefetchTable {
    fn new() -> Self {
        PrefetchTable {
            keys: [PREFETCH_EMPTY; PREFETCH_SLOTS],
            vals: [0.0; PREFETCH_SLOTS],
            len: 0,
        }
    }

    fn home(key: u64) -> usize {
        debug_assert!(PREFETCH_SLOTS.is_power_of_two());
        // Fibonacci hashing: multiply by 2^64/φ and keep the top bits.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - PREFETCH_SLOTS.trailing_zeros())) as usize
    }

    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, key: u64, val: f64) {
        debug_assert_ne!(key, PREFETCH_EMPTY);
        debug_assert!(self.len < PREFETCH_SLOTS - 1, "table kept half-full");
        let mask = PREFETCH_SLOTS - 1;
        let mut i = Self::home(key);
        loop {
            if self.keys[i] == key {
                self.vals[i] = val;
                return;
            }
            if self.keys[i] == PREFETCH_EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn remove(&mut self, key: u64) -> Option<f64> {
        let mask = PREFETCH_SLOTS - 1;
        let mut i = Self::home(key);
        loop {
            if self.keys[i] == PREFETCH_EMPTY {
                return None;
            }
            if self.keys[i] == key {
                break;
            }
            i = (i + 1) & mask;
        }
        let val = self.vals[i];
        self.len -= 1;
        // Backward-shift deletion: pull each follower whose home precedes
        // the hole into the hole, preserving every probe chain.
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            if self.keys[j] == PREFETCH_EMPTY {
                break;
            }
            let h = Self::home(self.keys[j]);
            // Movable iff its home is cyclically at or before the hole —
            // i.e. the probe from `h` reaches `hole` no later than `j`.
            if (j.wrapping_sub(h) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.keys[hole] = self.keys[j];
                self.vals[hole] = self.vals[j];
                hole = j;
            }
        }
        self.keys[hole] = PREFETCH_EMPTY;
        Some(val)
    }
}

/// An index-min binary heap electing the laggard core: entries are
/// `(time_ns, core index)` ordered lexicographically, so equal times resolve
/// to the lowest index — exactly the election the former linear scan made.
/// Each eligible core holds one entry; stepping a core mutates only that
/// core's clock, so remaining entries stay valid without re-keying.
struct CoreHeap {
    data: Vec<(f64, u32)>,
}

impl CoreHeap {
    fn with_capacity(n: usize) -> Self {
        CoreHeap {
            data: Vec::with_capacity(n),
        }
    }

    fn less(a: (f64, u32), b: (f64, u32)) -> bool {
        // Core clocks are always finite, so `<` is a total order here.
        a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
    }

    fn push(&mut self, time_ns: f64, idx: u32) {
        self.data.push((time_ns, idx));
        let mut child = self.data.len() - 1;
        while child > 0 {
            let parent = (child - 1) / 2;
            if Self::less(self.data[child], self.data[parent]) {
                self.data.swap(child, parent);
                child = parent;
            } else {
                break;
            }
        }
    }

    fn pop(&mut self) -> Option<(f64, u32)> {
        let last = self.data.len().checked_sub(1)?;
        self.data.swap(0, last);
        let top = self.data.pop()?;
        let mut parent = 0;
        loop {
            let left = 2 * parent + 1;
            if left >= self.data.len() {
                break;
            }
            let right = left + 1;
            let child = if right < self.data.len() && Self::less(self.data[right], self.data[left])
            {
                right
            } else {
                left
            };
            if Self::less(self.data[child], self.data[parent]) {
                self.data.swap(child, parent);
                parent = child;
            } else {
                break;
            }
        }
        Some(top)
    }
}

struct Core {
    stream: BoxedStream,
    hierarchy: CacheHierarchy,
    prefetcher: StreamPrefetcher,
    tlb: Tlb,
    /// Simulated time of this thread, ns.
    time_ns: f64,
    counters: CoreCounters,
    /// Outstanding independent misses: (completion ns, retired index).
    outstanding: VecDeque<(f64, u64)>,
    /// Prefetched lines (line address → memory completion time).
    pending_prefetch: PrefetchTable,
    io_credit: f64,
    io_toggle: bool,
    /// Instructions retired per phase label (Sec. IV.D weights, measured).
    phase_instructions: PhaseCounts,
    /// Reused prefetch-target buffer — keeps `issue_prefetches` allocation-
    /// free after the first trained miss.
    pf_scratch: Vec<u64>,
    /// Reused op block: one `fill_block` dispatch per scheduling quantum.
    block: OpBlock,
    /// Reused per-block TLB hit flags (one per non-idle access op).
    tlb_block: Vec<bool>,
    /// Reused per-block L1 hit flags (one per non-idle, non-NT access op).
    l1_block: Vec<bool>,
}

/// A background DMA agent: device traffic (storage, NIC) that hits memory
/// at a fixed rate independent of instruction progress — the explicit form
/// of the paper's I/O terms, usable to study analytics under storage
/// pressure.
#[derive(Debug, Clone)]
struct BackgroundAgent {
    rate_gbps: f64,
    read_fraction: f64,
    next_ns: f64,
    addr_state: u64,
    socket: usize,
}

/// A simulated multicore machine bound to one instruction stream per thread.
pub struct Machine {
    config: SimConfig,
    cores: Vec<Core>,
    /// One controller per socket (exactly one for non-NUMA configs).
    memory: Vec<MemoryController>,
    background: Vec<BackgroundAgent>,
    cycle_ns: f64,
    issue_ns: f64,
}

impl Drop for Machine {
    fn drop(&mut self) {
        // Flush this machine's lifetime work into the process-wide
        // telemetry registry (see `crate::telemetry`): harnesses snapshot
        // the registry around a stage to attribute simulator work to it.
        let mut total = crate::telemetry::TelemetrySnapshot::default();
        for core in &self.cores {
            total.ops += core.counters.instructions;
            total.cache_accesses += core.hierarchy.total_accesses();
            let (tlb_hits, tlb_misses) = core.tlb.stats();
            total.tlb_accesses += tlb_hits + tlb_misses;
            total.prefetch_fills += core.counters.prefetch_fills;
        }
        crate::telemetry::record(total);
    }
}

/// Routes a request to its home socket's controller, charging interconnect
/// hops for remote accesses. Free function so `step_core` can call it while
/// holding a mutable borrow of a core.
fn numa_request(
    config: &SimConfig,
    memory: &mut [MemoryController],
    core_socket: usize,
    now_ns: f64,
    addr: u64,
    write: bool,
) -> crate::mem::MemResponse {
    let sockets = memory.len();
    let home = if sockets == 1 {
        0
    } else if config.numa.interleaved {
        // Interleave at 4 KiB granularity across sockets, hashed so strided
        // patterns don't alias.
        let page = addr >> 12;
        ((page ^ (page >> 7)) % sockets as u64) as usize
    } else {
        core_socket
    };
    let hop = if home == core_socket {
        0.0
    } else {
        2.0 * config.numa.hop_ns
    };
    let mut resp = memory[home].request(now_ns + hop * 0.5, addr, write);
    resp.complete_ns += hop * 0.5;
    resp.latency_ns += hop;
    resp
}

impl Machine {
    /// Builds a machine running `streams[i]` on hardware thread `i`.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidConfig`] if the configuration fails validation.
    /// * [`SimError::StreamCountMismatch`] if `streams.len()` differs from
    ///   `config.cores`.
    pub fn new(config: SimConfig, streams: Vec<BoxedStream>) -> Result<Self, SimError> {
        config.validate()?;
        if streams.len() != config.cores as usize {
            return Err(SimError::StreamCountMismatch {
                cores: config.cores,
                streams: streams.len(),
            });
        }
        let cycle_ns = 1.0 / config.core_clock_ghz;
        let issue_ns = cycle_ns / config.issue_width as f64;
        let cores = streams
            .into_iter()
            .map(|stream| Core {
                stream,
                hierarchy: CacheHierarchy::new(&config),
                prefetcher: StreamPrefetcher::new(config.prefetch, config.line_size),
                tlb: Tlb::new(config.tlb),
                time_ns: 0.0,
                counters: CoreCounters::default(),
                outstanding: VecDeque::new(),
                pending_prefetch: PrefetchTable::new(),
                io_credit: 0.0,
                io_toggle: false,
                phase_instructions: PhaseCounts::new(),
                pf_scratch: Vec::with_capacity(8),
                block: OpBlock::new(),
                tlb_block: Vec::with_capacity(BATCH_OPS as usize),
                l1_block: Vec::with_capacity(BATCH_OPS as usize),
            })
            .collect();
        let memory = (0..config.numa.sockets)
            .map(|_| MemoryController::new(config.memory, config.line_size))
            .collect();
        Ok(Machine {
            config,
            cores,
            memory,
            // memsense-lint: allow(no-per-op-alloc) — one-time machine build
            background: Vec::new(),
            cycle_ns,
            issue_ns,
        })
    }

    /// The machine's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Attaches a background DMA agent injecting `rate_gbps` of device
    /// traffic (a `read_fraction` share of reads) into `socket`'s memory,
    /// starting at the current simulated time. Models storage/NIC pressure
    /// that is independent of instruction progress.
    ///
    /// # Panics
    ///
    /// Panics when the rate is not positive, the fraction is outside
    /// `[0, 1]`, or the socket index is out of range.
    pub fn add_background_traffic(&mut self, rate_gbps: f64, read_fraction: f64, socket: usize) {
        assert!(rate_gbps > 0.0 && rate_gbps.is_finite(), "rate must be > 0");
        assert!((0.0..=1.0).contains(&read_fraction), "fraction in [0, 1]");
        assert!(socket < self.memory.len(), "socket out of range");
        let start = self.now_ns().max(0.0);
        self.background.push(BackgroundAgent {
            rate_gbps,
            read_fraction,
            next_ns: start,
            addr_state: 0xb6_0000_0000 ^ (self.background.len() as u64) << 40,
            socket,
        });
    }

    /// Services background agents up to `deadline_ns`.
    fn run_background_until(&mut self, deadline_ns: f64) {
        let line = self.config.line_size as f64;
        for agent in &mut self.background {
            let interval = line / agent.rate_gbps; // ns between lines
            while agent.next_ns < deadline_ns {
                agent.addr_state = agent
                    .addr_state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let addr = (0xb0_0000_0000u64 + (agent.addr_state % (1 << 30))) & !63;
                let write =
                    (agent.addr_state >> 32) as f64 / u32::MAX as f64 >= agent.read_fraction;
                self.memory[agent.socket].request(agent.next_ns, addr, write);
                agent.next_ns += interval;
            }
        }
    }

    /// Summed counters across all threads.
    pub fn total_counters(&self) -> CoreCounters {
        let mut total = CoreCounters::default();
        for c in &self.cores {
            total.merge(&c.counters);
        }
        total
    }

    /// Per-thread counters.
    pub fn core_counters(&self) -> Vec<CoreCounters> {
        self.cores.iter().map(|c| c.counters).collect()
    }

    /// Memory-controller statistics, summed across sockets.
    pub fn memory_stats(&self) -> crate::mem::MemStats {
        let mut total = crate::mem::MemStats::default();
        for m in &self.memory {
            let s = m.stats();
            total.reads += s.reads;
            total.writes += s.writes;
            total.read_bytes += s.read_bytes;
            total.write_bytes += s.write_bytes;
            total.total_read_latency_ns += s.total_read_latency_ns;
            total.bus_busy_ns += s.bus_busy_ns;
            total.row_hits += s.row_hits;
            total.row_conflicts += s.row_conflicts;
        }
        total
    }

    /// Per-socket memory statistics.
    pub fn socket_memory_stats(&self) -> Vec<crate::mem::MemStats> {
        self.memory.iter().map(|m| m.stats()).collect()
    }

    /// Instructions retired per phase label, summed across threads — the
    /// empirical Sec. IV.D phase weights.
    pub fn phase_instruction_counts(&self) -> BTreeMap<String, u64> {
        let mut total: BTreeMap<String, u64> = BTreeMap::new();
        for core in &self.cores {
            core.phase_instructions.merge_into(&mut total);
        }
        total
    }

    fn socket_of(&self, core_idx: usize) -> usize {
        core_idx * self.config.numa.sockets as usize / self.cores.len()
    }

    /// Current simulated time: the laggard thread's clock (ns).
    pub fn now_ns(&self) -> f64 {
        self.cores
            .iter()
            .map(|c| c.time_ns)
            .fold(f64::INFINITY, f64::min)
    }

    /// Runs until every thread has retired at least `ops_per_core`
    /// additional instructions. Used for warm-up.
    pub fn run_ops(&mut self, ops_per_core: u64) {
        let targets: Vec<u64> = self
            .cores
            .iter()
            .map(|c| c.counters.instructions + ops_per_core)
            .collect();
        let mut heap = CoreHeap::with_capacity(self.cores.len());
        for (i, c) in self.cores.iter().enumerate() {
            if c.counters.instructions < targets[i] {
                heap.push(c.time_ns, i as u32);
            }
        }
        // Each eligible core holds exactly one heap entry; stepping a core
        // changes only its own clock and counters, so the rest stay valid.
        while let Some((t, i)) = heap.pop() {
            let idx = i as usize;
            if !self.background.is_empty() {
                self.run_background_until(t);
            }
            let remaining = targets[idx] - self.cores[idx].counters.instructions;
            self.step_core(idx, BATCH_OPS.min(remaining as u32).max(1));
            let c = &self.cores[idx];
            if c.counters.instructions < targets[idx] {
                heap.push(c.time_ns, i);
            }
        }
    }

    /// Runs until every thread's clock reaches `deadline_ns` (absolute).
    pub fn run_until_ns(&mut self, deadline_ns: f64) {
        let mut heap = CoreHeap::with_capacity(self.cores.len());
        for (i, c) in self.cores.iter().enumerate() {
            if c.time_ns < deadline_ns {
                heap.push(c.time_ns, i as u32);
            }
        }
        while let Some((t, i)) = heap.pop() {
            let idx = i as usize;
            if !self.background.is_empty() {
                self.run_background_until(t);
            }
            self.step_core(idx, BATCH_OPS);
            let c = &self.cores[idx];
            if c.time_ns < deadline_ns {
                heap.push(c.time_ns, i);
            }
        }
    }

    /// Runs `window_ns` of simulated time and derives one [`Measurement`]
    /// over that window.
    ///
    /// Returns `None` if no instruction retired in the window (a fully idle
    /// machine).
    pub fn measure_for_ns(&mut self, window_ns: f64) -> Option<Measurement> {
        let start = self.now_ns();
        let before_cores = self.total_counters();
        let before_mem = self.memory_stats();
        self.run_until_ns(start + window_ns);
        let cores = self.total_counters().delta(&before_cores);
        let mem = self.memory_stats().delta(&before_mem);
        Measurement::derive(
            &cores,
            &mem,
            window_ns,
            self.config.core_clock_ghz,
            self.config.cores,
        )
    }

    /// Collects `count` consecutive samples of `interval_ns` each — the
    /// Figs. 2/4/5 characterization time series.
    pub fn sample_series(&mut self, interval_ns: f64, count: usize) -> Vec<Sample> {
        let mut out = Vec::with_capacity(count);
        for k in 0..count {
            let t = self.now_ns();
            if let Some(measurement) = self.measure_for_ns(interval_ns) {
                out.push(Sample {
                    time_s: t / 1e9,
                    measurement,
                });
            } else {
                let _ = k;
            }
        }
        out
    }

    fn step_core(&mut self, idx: usize, ops: u32) {
        let socket = self.socket_of(idx);
        let config = &self.config;
        let core = &mut self.cores[idx];
        let rob = config.rob_size as u64;
        let mshrs = config.mshrs as usize;

        // Stage 1: one dynamic dispatch pulls the whole quantum of ops,
        // with phase labels and I/O rates attached as run-length sidecars.
        core.stream.fill_block(&mut core.block, ops as usize);
        let n = core.block.ops.len();

        // Stage 2: whole-block address translation. TLB state depends only
        // on the access-address sequence, so translating up front is
        // byte-identical to per-op interleaving; a disabled TLB (the
        // default) skips the stage entirely.
        let tlb_on = core.tlb.enabled();
        if tlb_on {
            core.tlb.access_block(&core.block.ops, &mut core.tlb_block);
        }

        // Stage 3: whole-block L1 probe (branchless SoA tag sweeps). L1 and
        // way-predictor state are mutated only by this demand sequence —
        // prefetch installs and dirty marks touch L2/LLC — so outcomes are
        // byte-identical; order-sensitive side effects (LLC dirty marks,
        // L2/LLC fills, memory requests) stay in the per-op loop below.
        core.hierarchy
            .l1_probe_block(&core.block.ops, &mut core.l1_block);

        let mut tlb_i = 0usize;
        let mut l1_i = 0usize;

        // Run cursors: phase bumps are flushed per run (`bump_n`), the I/O
        // credit add is skipped for zero-rate runs — both bit-identical to
        // the per-op forms.
        let mut phase_idx = 0usize;
        let mut phase_left = if n > 0 { core.block.phase_run(0).0 } else { 0 };
        let mut phase_retired = 0u64;
        let mut io_idx = 0usize;
        let (mut io_left, mut io_rate) = core.block.io_run(0);

        for j in 0..n {
            let op = core.block.ops[j];

            if op.idle {
                let dur = op.extra_cycles as f64 * self.cycle_ns;
                core.time_ns += dur;
                core.counters.idle_ns += dur;
                phase_left -= 1;
                if phase_left == 0 {
                    let (_, label) = core.block.phase_run(phase_idx);
                    core.phase_instructions.bump_n(label, phase_retired);
                    phase_retired = 0;
                    phase_idx += 1;
                    if phase_idx < core.block.phase_run_count() {
                        phase_left = core.block.phase_run(phase_idx).0;
                    }
                }
                io_left -= 1;
                if io_left == 0 {
                    io_idx += 1;
                    (io_left, io_rate) = core.block.io_run(io_idx);
                }
                continue;
            }

            // Issue slot + extra compute latency.
            let op_start_ns = core.time_ns;
            let mut advance = self.issue_ns + op.extra_cycles as f64 * self.cycle_ns;

            // I/O traffic owed by this thread's device activity. Adding a
            // zero rate cannot change a non-negative credit, so zero-rate
            // runs skip the whole block.
            if io_rate > 0.0 {
                core.io_credit += io_rate;
                while core.io_credit >= config.line_size as f64 {
                    core.io_credit -= config.line_size as f64;
                    let io_addr = core.counters.io_bytes.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        & !(config.line_size as u64 - 1);
                    let write = core.io_toggle;
                    core.io_toggle = !core.io_toggle;
                    numa_request(
                        config,
                        &mut self.memory,
                        socket,
                        core.time_ns,
                        io_addr,
                        write,
                    );
                    core.counters.io_bytes += config.line_size as u64;
                }
            }

            if let Some((addr, kind)) = op.access {
                let is_store = !matches!(kind, AccessKind::Load { .. });
                let dependent = matches!(kind, AccessKind::Load { dependent: true });

                // Address translation: a DTLB miss stalls for the walk.
                if tlb_on {
                    let tlb_hit = core.tlb_block[tlb_i];
                    tlb_i += 1;
                    if !tlb_hit {
                        let walk = core.tlb.walk_cycles() as f64 * self.cycle_ns;
                        advance += walk;
                        core.counters.stall_ns += walk;
                        core.counters.tlb_misses += 1;
                    }
                }

                if matches!(kind, AccessKind::NonTemporalStore) {
                    numa_request(config, &mut self.memory, socket, core.time_ns, addr, true);
                    core.counters.nt_stores += 1;
                } else {
                    let l1_hit = core.l1_block[l1_i];
                    l1_i += 1;
                    if l1_hit {
                        core.counters.l1_hits += 1;
                        if is_store {
                            core.hierarchy.mark_llc_dirty(addr);
                        }
                    } else {
                        let res = core.hierarchy.access_below_l1(addr, is_store);
                        match res.level {
                            HitLevel::L1 => {}
                            HitLevel::L2 => {
                                core.counters.l2_hits += 1;
                                let lat = core.hierarchy.l2_hit_latency as f64 * self.cycle_ns;
                                advance += if dependent {
                                    lat
                                } else {
                                    lat * INDEPENDENT_HIT_EXPOSURE
                                };
                                let line = addr >> config.line_size.trailing_zeros();
                                if let Some(ready) = core.pending_prefetch.remove(line) {
                                    if dependent {
                                        let t = core.time_ns + advance;
                                        if ready > t {
                                            core.counters.stall_ns += ready - t;
                                            advance += ready - t;
                                        }
                                    } else if ready > core.time_ns {
                                        core.outstanding
                                            .push_back((ready, core.counters.instructions));
                                    }
                                    Self::issue_prefetches(
                                        config,
                                        &mut self.memory,
                                        socket,
                                        core,
                                        addr,
                                    );
                                }
                            }
                            HitLevel::Llc => {
                                core.counters.llc_hits += 1;
                                let lat = core.hierarchy.llc_hit_latency as f64 * self.cycle_ns;
                                advance += if dependent {
                                    lat
                                } else {
                                    lat * INDEPENDENT_HIT_EXPOSURE
                                };
                                // A hit on a still-in-flight prefetched line
                                // exposes the remaining memory latency.
                                let line = addr >> config.line_size.trailing_zeros();
                                if let Some(ready) = core.pending_prefetch.remove(line) {
                                    if dependent {
                                        let t = core.time_ns + advance;
                                        if ready > t {
                                            core.counters.stall_ns += ready - t;
                                            advance += ready - t;
                                        }
                                    } else if ready > core.time_ns {
                                        core.outstanding
                                            .push_back((ready, core.counters.instructions));
                                    }
                                    // Keep the stream running ahead.
                                    Self::issue_prefetches(
                                        config,
                                        &mut self.memory,
                                        socket,
                                        core,
                                        addr,
                                    );
                                }
                            }
                            HitLevel::Memory => {
                                core.counters.llc_demand_misses += 1;
                                if let Some(victim) = res.memory_writeback {
                                    numa_request(
                                        config,
                                        &mut self.memory,
                                        socket,
                                        core.time_ns,
                                        victim,
                                        true,
                                    );
                                    core.counters.writebacks += 1;
                                }
                                Self::issue_prefetches(
                                    config,
                                    &mut self.memory,
                                    socket,
                                    core,
                                    addr,
                                );

                                // Retire completed misses, then respect MSHRs.
                                while let Some(&(done, _)) = core.outstanding.front() {
                                    if done <= core.time_ns {
                                        core.outstanding.pop_front();
                                    } else {
                                        break;
                                    }
                                }
                                if core.outstanding.len() >= mshrs {
                                    if let Some((done, _)) = core.outstanding.pop_front() {
                                        if done > core.time_ns {
                                            core.counters.stall_ns += done - core.time_ns;
                                            core.time_ns = done;
                                        }
                                    }
                                }

                                let resp = numa_request(
                                    config,
                                    &mut self.memory,
                                    socket,
                                    core.time_ns,
                                    addr,
                                    false,
                                );
                                if !is_store {
                                    core.counters.demand_miss_latency_ns += resp.latency_ns;
                                    core.counters.demand_miss_samples += 1;
                                }

                                if dependent {
                                    // Pointer chase: the core cannot proceed.
                                    let stall = resp.complete_ns - core.time_ns;
                                    core.counters.stall_ns += stall.max(0.0);
                                    core.time_ns = resp.complete_ns.max(core.time_ns);
                                } else if !is_store {
                                    core.outstanding
                                        .push_back((resp.complete_ns, core.counters.instructions));
                                }
                                // Stores retire via the store buffer: traffic
                                // counted, no core stall.
                            }
                        }
                    }
                }
            }

            // Reorder-window limit: the core may run at most `rob` retired
            // instructions past the oldest incomplete miss.
            while let Some(&(done, ridx)) = core.outstanding.front() {
                if done <= core.time_ns {
                    core.outstanding.pop_front();
                } else if core.counters.instructions.saturating_sub(ridx) >= rob {
                    core.counters.stall_ns += done - core.time_ns;
                    core.time_ns = done;
                    core.outstanding.pop_front();
                } else {
                    break;
                }
            }

            core.time_ns += advance;
            core.counters.busy_ns += core.time_ns - op_start_ns;
            core.counters.instructions += 1;
            phase_retired += 1;

            phase_left -= 1;
            if phase_left == 0 {
                let (_, label) = core.block.phase_run(phase_idx);
                core.phase_instructions.bump_n(label, phase_retired);
                phase_retired = 0;
                phase_idx += 1;
                if phase_idx < core.block.phase_run_count() {
                    phase_left = core.block.phase_run(phase_idx).0;
                }
            }
            io_left -= 1;
            if io_left == 0 {
                io_idx += 1;
                (io_left, io_rate) = core.block.io_run(io_idx);
            }
        }
        debug_assert_eq!(phase_retired, 0, "phase runs must cover the block");
    }

    fn issue_prefetches(
        config: &SimConfig,
        memory: &mut [MemoryController],
        socket: usize,
        core: &mut Core,
        addr: u64,
    ) {
        if core.pending_prefetch.len() >= MAX_PENDING_PREFETCHES {
            return;
        }
        let line_shift = config.line_size.trailing_zeros();
        let mut targets = std::mem::take(&mut core.pf_scratch);
        core.prefetcher.on_miss_into(addr, &mut targets);
        for &pf_addr in &targets {
            if core.hierarchy.llc_contains(pf_addr) {
                continue;
            }
            let resp = numa_request(config, memory, socket, core.time_ns, pf_addr, false);
            if let Some(victim) = core.hierarchy.install_prefetch(pf_addr) {
                numa_request(config, memory, socket, core.time_ns, victim, true);
                core.counters.writebacks += 1;
            }
            core.counters.prefetch_fills += 1;
            core.pending_prefetch
                .insert(pf_addr >> line_shift, resp.complete_ns);
            if core.pending_prefetch.len() >= MAX_PENDING_PREFETCHES {
                break;
            }
        }
        core.pf_scratch = targets;
    }
}

impl core::fmt::Debug for Machine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cores.len())
            .field("now_ns", &self.now_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{InstructionStream, Op, PatternStream};

    fn machine_with(pattern: Vec<Op>, cores: u32) -> Machine {
        let cfg = SimConfig::xeon_like(cores);
        // One Arc-backed pattern; per-core clones share the op buffer and
        // keep private cursors.
        let proto = PatternStream::new(pattern);
        let streams: Vec<BoxedStream> = (0..cores)
            .map(|_| Box::new(proto.clone()) as BoxedStream)
            .collect();
        Machine::new(cfg, streams).unwrap()
    }

    #[test]
    fn prefetch_table_matches_map_semantics() {
        let mut t = PrefetchTable::new();
        assert_eq!(t.len(), 0);
        assert_eq!(t.remove(42), None);
        t.insert(42, 1.5);
        t.insert(42, 2.5); // overwrite, not a second entry
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(42), Some(2.5));
        assert_eq!(t.len(), 0);
        assert_eq!(t.remove(42), None);
    }

    #[test]
    fn prefetch_table_survives_collisions_and_deletion() {
        // Fill to the MAX_PENDING_PREFETCHES operating point, then delete
        // in an interleaved order and verify every survivor is reachable
        // (backward-shift must keep all probe chains intact).
        let mut t = PrefetchTable::new();
        let keys: Vec<u64> = (0..MAX_PENDING_PREFETCHES as u64)
            .map(|k| k * 977)
            .collect();
        for &k in &keys {
            t.insert(k, k as f64);
        }
        assert_eq!(t.len(), MAX_PENDING_PREFETCHES);
        for &k in keys.iter().step_by(3) {
            assert_eq!(t.remove(k), Some(k as f64));
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(t.remove(k), None, "key {k} already removed");
            } else {
                assert_eq!(t.remove(k), Some(k as f64), "key {k} lost in shift");
            }
        }
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn core_heap_orders_by_time_then_index() {
        let mut h = CoreHeap::with_capacity(4);
        h.push(5.0, 2);
        h.push(1.0, 3);
        h.push(1.0, 1); // ties resolve to the lowest index
        h.push(9.0, 0);
        assert_eq!(h.pop(), Some((1.0, 1)));
        assert_eq!(h.pop(), Some((1.0, 3)));
        assert_eq!(h.pop(), Some((5.0, 2)));
        assert_eq!(h.pop(), Some((9.0, 0)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn stream_count_must_match() {
        let cfg = SimConfig::xeon_like(2);
        let streams: Vec<BoxedStream> = vec![Box::new(PatternStream::new(vec![Op::compute()]))];
        assert!(matches!(
            Machine::new(cfg, streams),
            Err(SimError::StreamCountMismatch {
                cores: 2,
                streams: 1
            })
        ));
    }

    #[test]
    fn pure_compute_hits_issue_width_cpi() {
        let mut m = machine_with(vec![Op::compute()], 1);
        m.run_ops(10_000);
        let c = m.total_counters();
        let cpi = c.busy_ns * m.config().core_clock_ghz / c.instructions as f64;
        assert!(
            (cpi - 0.25).abs() < 0.01,
            "4-wide issue → CPI 0.25, got {cpi}"
        );
    }

    #[test]
    fn heavy_compute_raises_cpi() {
        let mut m = machine_with(vec![Op::compute(), Op::compute_heavy(3)], 1);
        m.run_ops(10_000);
        let c = m.total_counters();
        let cpi = c.busy_ns * m.config().core_clock_ghz / c.instructions as f64;
        // (0.25 + 3.25) / 2 = 1.75
        assert!((cpi - 1.75).abs() < 0.02, "got {cpi}");
    }

    #[test]
    fn idle_ops_counted_as_idle_not_instructions() {
        let mut m = machine_with(vec![Op::compute(), Op::idle(100)], 1);
        m.run_ops(100);
        let c = m.total_counters();
        assert!(c.idle_ns > 0.0);
        assert_eq!(c.instructions, 100);
    }

    #[test]
    fn l1_resident_loads_do_not_miss() {
        // Two lines, hammered forever: everything after warmup is an L1 hit.
        let mut m = machine_with(vec![Op::load(0), Op::load(64)], 1);
        m.run_ops(10_000);
        let c = m.total_counters();
        assert!(c.llc_demand_misses <= 2);
        assert!(c.l1_hits > 9_900);
    }

    #[test]
    fn random_dependent_loads_expose_memory_latency() {
        // A pointer chase over a footprint far larger than the LLC: CPI must
        // approach the full memory latency per access.
        struct Chase {
            addr: u64,
        }
        impl InstructionStream for Chase {
            fn next_op(&mut self) -> Op {
                self.addr = self.addr.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = self.addr % (64 * 1024 * 1024);
                Op::dependent_load(a & !63)
            }
        }
        let cfg = SimConfig::xeon_like(1);
        let mut m = Machine::new(cfg, vec![Box::new(Chase { addr: 1 })]).unwrap();
        m.run_ops(20_000);
        let c = m.total_counters();
        let cpi = c.busy_ns * m.config().core_clock_ghz / c.instructions as f64;
        // ~75 ns × 2.7 GHz ≈ 200 cycles per chased load.
        assert!(cpi > 100.0, "pointer chase CPI {cpi}");
        assert!(c.llc_demand_misses > 15_000);
    }

    #[test]
    fn independent_loads_overlap() {
        // Random independent loads: MLP ≈ MSHR count, CPI far below the
        // dependent-chase case.
        struct RandLoad {
            addr: u64,
        }
        impl InstructionStream for RandLoad {
            fn next_op(&mut self) -> Op {
                self.addr = self.addr.wrapping_mul(6364136223846793005).wrapping_add(99);
                let a = self.addr % (64 * 1024 * 1024);
                Op::load(a & !63)
            }
        }
        let cfg = SimConfig::xeon_like(1);
        let mut m = Machine::new(cfg, vec![Box::new(RandLoad { addr: 7 })]).unwrap();
        m.run_ops(20_000);
        let c = m.total_counters();
        let cpi = c.busy_ns * m.config().core_clock_ghz / c.instructions as f64;
        assert!(cpi < 60.0, "independent loads must overlap, CPI {cpi}");
    }

    #[test]
    fn sequential_scan_mostly_prefetched() {
        struct Scan {
            addr: u64,
        }
        impl InstructionStream for Scan {
            fn next_op(&mut self) -> Op {
                self.addr += 64;
                Op::load(self.addr % (256 * 1024 * 1024))
            }
        }
        let cfg = SimConfig::xeon_like(1);
        let mut m = Machine::new(cfg, vec![Box::new(Scan { addr: 0 })]).unwrap();
        m.run_ops(50_000);
        let c = m.total_counters();
        assert!(
            c.prefetch_fills > c.llc_demand_misses,
            "prefetches {} should dominate demand misses {}",
            c.prefetch_fills,
            c.llc_demand_misses
        );
        let cpi = c.busy_ns * m.config().core_clock_ghz / c.instructions as f64;
        assert!(cpi < 30.0, "prefetched scan CPI {cpi}");
    }

    #[test]
    fn prefetcher_off_hurts_scan() {
        struct Scan {
            addr: u64,
        }
        impl InstructionStream for Scan {
            fn next_op(&mut self) -> Op {
                self.addr += 64;
                Op::load(self.addr % (256 * 1024 * 1024))
            }
        }
        let on_cfg = SimConfig::xeon_like(1);
        let off_cfg = SimConfig::xeon_like(1).with_prefetcher(false);
        let mut on = Machine::new(on_cfg, vec![Box::new(Scan { addr: 0 })]).unwrap();
        let mut off = Machine::new(off_cfg, vec![Box::new(Scan { addr: 0 })]).unwrap();
        on.run_ops(30_000);
        off.run_ops(30_000);
        let cpi = |m: &Machine| {
            let c = m.total_counters();
            c.busy_ns * m.config().core_clock_ghz / c.instructions as f64
        };
        assert!(
            cpi(&off) > cpi(&on) * 1.3,
            "off {} vs on {}",
            cpi(&off),
            cpi(&on)
        );
    }

    #[test]
    fn writebacks_flow_from_dirty_stores() {
        struct StoreScan {
            addr: u64,
        }
        impl InstructionStream for StoreScan {
            fn next_op(&mut self) -> Op {
                self.addr += 64;
                Op::store(self.addr % (64 * 1024 * 1024))
            }
        }
        let cfg = SimConfig::xeon_like(1);
        let mut m = Machine::new(cfg, vec![Box::new(StoreScan { addr: 0 })]).unwrap();
        m.run_ops(50_000);
        let c = m.total_counters();
        assert!(c.writebacks > 1_000, "dirty evictions: {}", c.writebacks);
        assert!(m.memory_stats().writes >= c.writebacks);
    }

    #[test]
    fn nt_stores_generate_write_traffic_without_caching() {
        struct NtScan {
            addr: u64,
        }
        impl InstructionStream for NtScan {
            fn next_op(&mut self) -> Op {
                self.addr += 64;
                Op::nt_store(self.addr)
            }
        }
        let cfg = SimConfig::xeon_like(1);
        let mut m = Machine::new(cfg, vec![Box::new(NtScan { addr: 0 })]).unwrap();
        m.run_ops(5_000);
        let c = m.total_counters();
        assert_eq!(c.nt_stores, 5_000);
        assert_eq!(m.memory_stats().writes, 5_000);
        assert_eq!(c.llc_demand_misses, 0);
    }

    #[test]
    fn io_traffic_injected() {
        let pattern = PatternStream::new(vec![Op::compute()]).with_io_rate(32.0);
        let cfg = SimConfig::xeon_like(1);
        let mut m = Machine::new(cfg, vec![Box::new(pattern)]).unwrap();
        m.run_ops(1_000);
        let c = m.total_counters();
        // 32 B/instr × 1000 instr = 32 000 B = 500 lines.
        assert_eq!(c.io_bytes, 32_000);
        assert_eq!(m.memory_stats().total_bytes(), 32_000);
    }

    #[test]
    fn measure_window_produces_metrics() {
        let mut m = machine_with(vec![Op::compute(), Op::load(0)], 2);
        m.run_ops(1_000);
        let meas = m.measure_for_ns(10_000.0).expect("instructions retired");
        assert!(meas.cpi_eff > 0.0);
        assert!(meas.cpu_utilization > 0.9);
        assert!(meas.instructions > 0);
    }

    #[test]
    fn sample_series_advances_time() {
        let mut m = machine_with(vec![Op::compute()], 1);
        let samples = m.sample_series(1_000.0, 5);
        assert_eq!(samples.len(), 5);
        for w in samples.windows(2) {
            assert!(w[1].time_s > w[0].time_s);
        }
    }

    #[test]
    fn multicore_contention_raises_latency() {
        // The same random-load stream on 1 vs 16 threads: shared channels
        // must show higher average miss latency under load.
        struct RandLoad {
            addr: u64,
        }
        impl InstructionStream for RandLoad {
            fn next_op(&mut self) -> Op {
                self.addr = self.addr.wrapping_mul(6364136223846793005).wrapping_add(99);
                Op::load((self.addr % (64 * 1024 * 1024)) & !63)
            }
        }
        let one = {
            let cfg = SimConfig::xeon_like(1);
            let mut m = Machine::new(cfg, vec![Box::new(RandLoad { addr: 3 })]).unwrap();
            m.run_ops(10_000);
            let c = m.total_counters();
            c.demand_miss_latency_ns / c.demand_miss_samples as f64
        };
        let many = {
            let cfg = SimConfig::xeon_like(16);
            let streams: Vec<BoxedStream> = (0..16)
                .map(|i| Box::new(RandLoad { addr: 3 + i }) as BoxedStream)
                .collect();
            let mut m = Machine::new(cfg, streams).unwrap();
            m.run_ops(10_000);
            let c = m.total_counters();
            c.demand_miss_latency_ns / c.demand_miss_samples as f64
        };
        assert!(
            many > one * 1.2,
            "16-thread latency {many} must exceed 1-thread {one}"
        );
    }

    #[test]
    fn tlb_misses_slow_scattered_access() {
        struct PageHopper {
            page: u64,
        }
        impl InstructionStream for PageHopper {
            fn next_op(&mut self) -> Op {
                self.page = self.page.wrapping_add(1);
                // One access per page over a huge footprint, but always the
                // same line within the L1 set — cache hits, TLB misses.
                Op::load((self.page % 100_000) << 12)
            }
        }
        let without = {
            let cfg = SimConfig::xeon_like(1);
            let mut m = Machine::new(cfg, vec![Box::new(PageHopper { page: 0 })]).unwrap();
            m.run_ops(5_000);
            m.total_counters()
        };
        let with = {
            let cfg = SimConfig::xeon_like(1).with_tlb(crate::tlb::TlbConfig::dtlb_64());
            let mut m = Machine::new(cfg, vec![Box::new(PageHopper { page: 0 })]).unwrap();
            m.run_ops(5_000);
            m.total_counters()
        };
        assert_eq!(without.tlb_misses, 0);
        assert!(
            with.tlb_misses > 4_000,
            "page hopping misses the TLB: {}",
            with.tlb_misses
        );
        assert!(with.busy_ns > without.busy_ns * 1.1, "walks cost time");
    }

    #[test]
    fn numa_interleaved_slower_than_local() {
        use crate::config::NumaSimConfig;
        struct RandLoad {
            addr: u64,
        }
        impl InstructionStream for RandLoad {
            fn next_op(&mut self) -> Op {
                self.addr = self.addr.wrapping_mul(6364136223846793005).wrapping_add(17);
                Op::dependent_load((self.addr % (32 * 1024 * 1024)) & !63)
            }
        }
        let run = |numa: NumaSimConfig| {
            let cfg = SimConfig::xeon_like(4).with_numa(numa);
            let streams: Vec<BoxedStream> = (0..4)
                .map(|i| Box::new(RandLoad { addr: 11 + i }) as BoxedStream)
                .collect();
            let mut m = Machine::new(cfg, streams).unwrap();
            m.run_ops(5_000);
            let c = m.total_counters();
            c.demand_miss_latency_ns / c.demand_miss_samples as f64
        };
        let local = run(NumaSimConfig::dual_socket(false));
        let interleaved = run(NumaSimConfig::dual_socket(true));
        // Interleaved placement sends ~half the misses across the 2×30 ns
        // hop: average latency rises by roughly 30 ns.
        assert!(
            interleaved > local + 15.0,
            "interleaved {interleaved} vs local {local}"
        );
    }

    #[test]
    fn numa_socket_stats_split() {
        use crate::config::NumaSimConfig;
        let cfg = SimConfig::xeon_like(4).with_numa(NumaSimConfig::dual_socket(true));
        let streams: Vec<BoxedStream> = (0..4)
            .map(|_| {
                Box::new(PatternStream::new(vec![Op::nt_store(0), Op::compute()])) as BoxedStream
            })
            .collect();
        let mut m = Machine::new(cfg, streams).unwrap();
        m.run_ops(2_000);
        let per_socket = m.socket_memory_stats();
        assert_eq!(per_socket.len(), 2);
        let total = m.memory_stats();
        assert_eq!(
            per_socket.iter().map(|s| s.writes).sum::<u64>(),
            total.writes
        );
    }

    #[test]
    fn numa_validation_rejects_odd_split() {
        use crate::config::NumaSimConfig;
        let mut cfg = SimConfig::xeon_like(3);
        cfg.numa = NumaSimConfig::dual_socket(true);
        assert!(cfg.validate().is_err(), "3 cores over 2 sockets rejected");
    }

    #[test]
    fn phase_instruction_counts_attributed() {
        struct Phased {
            n: u64,
        }
        impl InstructionStream for Phased {
            fn next_op(&mut self) -> Op {
                self.n += 1;
                Op::compute()
            }
            fn phase(&self) -> &str {
                // next_op has already advanced n for the op being counted.
                if self.n.is_multiple_of(4) {
                    "minor"
                } else {
                    "major"
                }
            }
        }
        let cfg = SimConfig::xeon_like(1);
        let mut m = Machine::new(cfg, vec![Box::new(Phased { n: 0 })]).unwrap();
        m.run_ops(4_000);
        let counts = m.phase_instruction_counts();
        let major = counts["major"];
        let minor = counts["minor"];
        assert_eq!(major + minor, 4_000);
        assert!(
            (major as f64 / minor as f64 - 3.0).abs() < 0.1,
            "{major}/{minor}"
        );
        // Pins the no-unordered-output audit: phase counters report through
        // a BTreeMap, so labels always come back in sorted order regardless
        // of the order threads first touched them.
        let labels: Vec<&String> = counts.keys().collect();
        let mut sorted = labels.clone();
        sorted.sort();
        assert_eq!(labels, sorted);
    }

    #[test]
    fn background_traffic_slows_foreground() {
        struct Chase {
            addr: u64,
        }
        impl InstructionStream for Chase {
            fn next_op(&mut self) -> Op {
                self.addr = self.addr.wrapping_mul(6364136223846793005).wrapping_add(3);
                Op::dependent_load((self.addr % (32 * 1024 * 1024)) & !63)
            }
        }
        let run = |bg: Option<f64>| {
            let cfg = SimConfig::xeon_like(2);
            let streams: Vec<BoxedStream> = (0..2)
                .map(|i| Box::new(Chase { addr: 5 + i }) as BoxedStream)
                .collect();
            let mut m = Machine::new(cfg, streams).unwrap();
            if let Some(rate) = bg {
                m.add_background_traffic(rate, 0.5, 0);
            }
            m.run_ops(8_000);
            let c = m.total_counters();
            (
                c.busy_ns * m.config().core_clock_ghz / c.instructions as f64,
                m.memory_stats().total_bytes(),
            )
        };
        let (quiet_cpi, quiet_bytes) = run(None);
        let (loud_cpi, loud_bytes) = run(Some(25.0));
        assert!(
            loud_cpi > quiet_cpi * 1.05,
            "25 GB/s of DMA must slow a pointer chase: {quiet_cpi} -> {loud_cpi}"
        );
        assert!(
            loud_bytes > quiet_bytes * 2,
            "DMA bytes visible in the controller"
        );
    }

    #[test]
    #[should_panic(expected = "rate must be > 0")]
    fn background_rejects_zero_rate() {
        let cfg = SimConfig::xeon_like(1);
        let mut m =
            Machine::new(cfg, vec![Box::new(PatternStream::new(vec![Op::compute()]))]).unwrap();
        m.add_background_traffic(0.0, 0.5, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut m = machine_with(vec![Op::compute(), Op::load(0), Op::store(4096)], 4);
            m.run_ops(5_000);
            let c = m.total_counters();
            (c.instructions, c.busy_ns.to_bits(), c.llc_demand_misses)
        };
        assert_eq!(run(), run());
    }
}
