//! Simulator configuration.
//!
//! Mirrors the knobs the paper turns on its Xeon E5-2600 testbed: core clock
//! (OS governors), memory speed (BIOS/MSRs), core counts, and the cache
//! hierarchy (2.5 MB LLC per core). Defaults are scaled down so that a few
//! million simulated instructions exhibit the same cache behaviour a real
//! machine shows over billions.

use crate::SimError;

/// Cache geometry and latency for one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a multiple of `line_size × ways`.
    pub capacity: usize,
    /// Associativity (ways per set). Must be ≥ 1.
    pub ways: usize,
    /// Load-to-use latency in core cycles on a hit at this level.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry for a given line size.
    pub fn sets(&self, line_size: usize) -> usize {
        self.capacity / (line_size * self.ways)
    }
}

/// Row-buffer management policy for the DRAM banks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowPolicy {
    /// Closed page: every access pays the amortized
    /// [`MemoryConfig::bank_access_ns`] (activate + CAS + precharge). The
    /// default, and what the calibrated workload parameters assume.
    ClosedPage,
    /// Open page: the bank keeps its last row open. Row hits pay only
    /// `hit_ns` (CAS); row conflicts pay `miss_ns` (precharge + activate +
    /// CAS). `row_bytes` is the row (page) size.
    OpenPage {
        /// Access time on a row-buffer hit (ns).
        hit_ns: f64,
        /// Access time on a row-buffer conflict (ns).
        miss_ns: f64,
        /// DRAM row size in bytes (8 KiB typical).
        row_bytes: u64,
    },
}

impl RowPolicy {
    /// A DDR3-flavoured open-page policy: ~15 ns CAS on a hit, ~52 ns on a
    /// conflict, 8 KiB rows.
    pub fn open_page_ddr3() -> Self {
        RowPolicy::OpenPage {
            hit_ns: 15.0,
            miss_ns: 52.0,
            row_bytes: 8192,
        }
    }
}

/// Periodic DRAM refresh (optional fidelity feature).
///
/// Every `interval_ns` each channel is unavailable for `duration_ns` while
/// rows refresh (tREFI/tRFC). Disabled by default; the steady-state
/// bandwidth loss is `duration/interval` (~4–5% for DDR3/4 parts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshConfig {
    /// Refresh interval per channel (tREFI), ns.
    pub interval_ns: f64,
    /// Refresh duration (tRFC), ns.
    pub duration_ns: f64,
}

impl RefreshConfig {
    /// A 4 Gb DDR3 part: tREFI 7.8 µs, tRFC 300 ns.
    pub fn ddr3_4gb() -> Self {
        RefreshConfig {
            interval_ns: 7_800.0,
            duration_ns: 300.0,
        }
    }
}

/// DDR-style memory channel timing.
///
/// The unloaded latency seen by a core is
/// `controller_overhead + bank_access + transfer`, which with the defaults
/// lands near the paper's 75 ns compulsory latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// Independent channels; cache lines are interleaved across them.
    pub channels: u32,
    /// Banks per channel that can overlap row access.
    pub banks_per_channel: u32,
    /// Transfer rate in mega-transfers per second (e.g. 1866.7 for
    /// DDR3-1867). Sets the per-channel data-bus occupancy per line.
    pub mega_transfers: f64,
    /// Average bank access time (activate + CAS + precharge amortized), ns.
    pub bank_access_ns: f64,
    /// Fixed path overhead (on-chip interconnect + controller), ns.
    pub controller_overhead_ns: f64,
    /// Extra bus penalty when a channel switches between reads and writes.
    pub turnaround_ns: f64,
    /// Per-channel request queue capacity (back-pressure limit).
    pub queue_depth: usize,
    /// Row-buffer policy.
    pub row_policy: RowPolicy,
    /// Periodic refresh; `None` disables it (the default).
    pub refresh: Option<RefreshConfig>,
}

impl MemoryConfig {
    /// DDR3-1867, four channels — the paper's baseline memory.
    pub fn ddr3_1867() -> Self {
        MemoryConfig {
            channels: 4,
            banks_per_channel: 16, // 2 ranks x 8 banks
            mega_transfers: 1866.7,
            bank_access_ns: 42.0,
            controller_overhead_ns: 28.0,
            turnaround_ns: 7.5,
            queue_depth: 32,
            row_policy: RowPolicy::ClosedPage,
            refresh: None,
        }
    }

    /// DDR3-1333: the slower memory-speed setting used in the frequency /
    /// memory-speed sweeps (Sec. V.A) and the second Fig. 7 speed.
    pub fn ddr3_1333() -> Self {
        MemoryConfig {
            mega_transfers: 1333.0,
            bank_access_ns: 46.0,
            ..Self::ddr3_1867()
        }
    }

    /// Seconds the data bus is occupied transferring one cache line.
    pub fn transfer_ns(&self, line_size: usize) -> f64 {
        line_size as f64 / (self.mega_transfers * 1e6 * 8.0) * 1e9
    }

    /// Peak bandwidth across all channels in GB/s.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.mega_transfers * 1e6 * 8.0 * self.channels as f64 / 1e9
    }

    /// Approximate unloaded (compulsory) latency in ns.
    pub fn unloaded_latency_ns(&self, line_size: usize) -> f64 {
        self.controller_overhead_ns + self.bank_access_ns + self.transfer_ns(line_size)
    }
}

/// Stream-prefetcher settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Master enable.
    pub enabled: bool,
    /// Consecutive same-direction misses within a page needed to arm a
    /// stream.
    pub train_threshold: u32,
    /// Lines fetched ahead of an armed stream.
    pub degree: u32,
    /// Maximum simultaneously tracked streams.
    pub streams: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            enabled: true,
            train_threshold: 2,
            degree: 12,
            streams: 16,
        }
    }
}

/// Multi-socket (NUMA) topology for the simulator. One memory controller
/// per socket; remote accesses pay an interconnect hop each way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumaSimConfig {
    /// Sockets; 1 disables NUMA modeling (single controller, no hops).
    pub sockets: u32,
    /// One-way interconnect hop latency (ns); a remote access pays two.
    pub hop_ns: f64,
    /// Memory placement: `true` interleaves lines across sockets (a
    /// (sockets−1)/sockets remote fraction), `false` homes every line on
    /// the accessing core's socket (perfect locality).
    pub interleaved: bool,
}

impl NumaSimConfig {
    /// Single socket (the default): no NUMA effects.
    pub fn single_socket() -> Self {
        NumaSimConfig {
            sockets: 1,
            hop_ns: 0.0,
            interleaved: false,
        }
    }

    /// A QPI-era dual-socket topology with ~30 ns one-way hops.
    pub fn dual_socket(interleaved: bool) -> Self {
        NumaSimConfig {
            sockets: 2,
            hop_ns: 30.0,
            interleaved,
        }
    }
}

impl Default for NumaSimConfig {
    fn default() -> Self {
        Self::single_socket()
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of hardware threads simulated (the paper runs one software
    /// thread per logical processor).
    pub cores: u32,
    /// Core clock in GHz.
    pub core_clock_ghz: f64,
    /// Instructions retired per cycle when nothing stalls.
    pub issue_width: u32,
    /// Reorder-window size: how many instructions the core can run ahead of
    /// the oldest incomplete memory access.
    pub rob_size: u32,
    /// Miss-status-holding registers: maximum overlapping LLC misses per
    /// core (bounds MLP).
    pub mshrs: u32,
    /// Cache line size in bytes.
    pub line_size: usize,
    /// Private L1 data cache.
    pub l1: CacheConfig,
    /// Private L2 cache.
    pub l2: CacheConfig,
    /// Per-core LLC slice (the paper's machines have 2.5 MB LLC per core).
    pub llc: CacheConfig,
    /// Memory subsystem.
    pub memory: MemoryConfig,
    /// Prefetcher.
    pub prefetch: PrefetchConfig,
    /// Data TLB (disabled by default; see [`crate::tlb::TlbConfig`]).
    pub tlb: crate::tlb::TlbConfig,
    /// NUMA topology (single socket by default). With `sockets > 1`,
    /// [`SimConfig::cores`] are split evenly across sockets and
    /// [`SimConfig::memory`] describes *one socket's* channels.
    pub numa: NumaSimConfig,
    /// RNG seed for anything stochastic inside the engine.
    pub seed: u64,
}

impl SimConfig {
    /// A scaled-down Xeon-E5-2600-like machine: cache capacities are ~1/64
    /// of the real parts so that sub-million-instruction runs reach the
    /// steady-state miss behaviour billions of instructions would on
    /// hardware. Workload footprints in `memsense-workloads` are scaled to
    /// match.
    pub fn xeon_like(cores: u32) -> Self {
        SimConfig {
            cores,
            core_clock_ghz: 2.7,
            issue_width: 4,
            rob_size: 96,
            mshrs: 10,
            line_size: 64,
            l1: CacheConfig {
                capacity: 1024,
                ways: 8,
                hit_latency: 4,
            },
            l2: CacheConfig {
                capacity: 8 * 1024,
                ways: 8,
                hit_latency: 12,
            },
            llc: CacheConfig {
                capacity: 40 * 1024,
                ways: 20,
                hit_latency: 36,
            },
            memory: MemoryConfig::ddr3_1867(),
            prefetch: PrefetchConfig::default(),
            tlb: crate::tlb::TlbConfig::disabled(),
            numa: NumaSimConfig::single_socket(),
            seed: 0x5eed,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.cores == 0 {
            return Err(SimError::InvalidConfig("cores must be > 0"));
        }
        if !(self.core_clock_ghz > 0.0 && self.core_clock_ghz.is_finite()) {
            return Err(SimError::InvalidConfig("core clock must be > 0"));
        }
        if self.issue_width == 0 {
            return Err(SimError::InvalidConfig("issue width must be > 0"));
        }
        if self.rob_size == 0 {
            return Err(SimError::InvalidConfig("rob size must be > 0"));
        }
        if self.mshrs == 0 {
            return Err(SimError::InvalidConfig("mshrs must be > 0"));
        }
        if !self.line_size.is_power_of_two() || self.line_size < 8 {
            return Err(SimError::InvalidConfig(
                "line size must be a power of two >= 8",
            ));
        }
        for (name, c) in [("l1", &self.l1), ("l2", &self.l2), ("llc", &self.llc)] {
            if c.ways == 0 {
                return Err(SimError::InvalidConfig("cache ways must be > 0"));
            }
            let line_bytes = self.line_size * c.ways;
            if c.capacity == 0 || c.capacity % line_bytes != 0 {
                return Err(SimError::InvalidConfig(match name {
                    "l1" => "l1 capacity must be a positive multiple of line_size*ways",
                    "l2" => "l2 capacity must be a positive multiple of line_size*ways",
                    _ => "llc capacity must be a positive multiple of line_size*ways",
                }));
            }
            if !c.sets(self.line_size).is_power_of_two() {
                return Err(SimError::InvalidConfig(
                    "cache set count must be a power of two",
                ));
            }
        }
        if self.memory.channels == 0 || self.memory.banks_per_channel == 0 {
            return Err(SimError::InvalidConfig("channels and banks must be > 0"));
        }
        if self.memory.mega_transfers.is_nan() || self.memory.mega_transfers <= 0.0 {
            return Err(SimError::InvalidConfig("memory transfer rate must be > 0"));
        }
        if self.memory.queue_depth == 0 {
            return Err(SimError::InvalidConfig("queue depth must be > 0"));
        }
        if self.numa.sockets == 0 {
            return Err(SimError::InvalidConfig("sockets must be > 0"));
        }
        if !self.cores.is_multiple_of(self.numa.sockets) {
            return Err(SimError::InvalidConfig(
                "cores must divide evenly across sockets",
            ));
        }
        if !(self.numa.hop_ns >= 0.0 && self.numa.hop_ns.is_finite()) {
            return Err(SimError::InvalidConfig("hop latency must be >= 0"));
        }
        Ok(())
    }

    /// Converts core cycles to nanoseconds at the configured clock.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles / self.core_clock_ghz
    }

    /// Converts nanoseconds to core cycles at the configured clock.
    pub fn ns_to_cycles(&self, ns: f64) -> f64 {
        ns * self.core_clock_ghz
    }

    /// Returns a copy with a different core clock (the frequency-scaling
    /// knob of Sec. V.A).
    pub fn with_core_clock(mut self, ghz: f64) -> Self {
        self.core_clock_ghz = ghz;
        self
    }

    /// Returns a copy with different memory timing (the memory-speed knob).
    pub fn with_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// Returns a copy with the prefetcher force-enabled or disabled.
    pub fn with_prefetcher(mut self, enabled: bool) -> Self {
        self.prefetch.enabled = enabled;
        self
    }

    /// Returns a copy with a data-TLB model enabled.
    pub fn with_tlb(mut self, tlb: crate::tlb::TlbConfig) -> Self {
        self.tlb = tlb;
        self
    }

    /// Returns a copy with a NUMA topology.
    pub fn with_numa(mut self, numa: NumaSimConfig) -> Self {
        self.numa = numa;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::xeon_like(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_valid() {
        SimConfig::default().validate().unwrap();
        SimConfig::xeon_like(16).validate().unwrap();
    }

    #[test]
    fn unloaded_latency_near_75ns() {
        let m = MemoryConfig::ddr3_1867();
        let lat = m.unloaded_latency_ns(64);
        assert!((lat - 75.0).abs() < 2.0, "unloaded = {lat} ns");
    }

    #[test]
    fn peak_bandwidth_matches_paper() {
        let m = MemoryConfig::ddr3_1867();
        assert!((m.peak_bandwidth_gbps() - 59.7).abs() < 0.1);
        let slow = MemoryConfig::ddr3_1333();
        assert!(slow.peak_bandwidth_gbps() < m.peak_bandwidth_gbps());
    }

    #[test]
    fn transfer_time_scales_with_speed() {
        let fast = MemoryConfig::ddr3_1867().transfer_ns(64);
        let slow = MemoryConfig::ddr3_1333().transfer_ns(64);
        assert!(slow > fast);
        assert!((fast - 4.29).abs() < 0.05);
    }

    #[test]
    fn cache_sets_computed() {
        let c = CacheConfig {
            capacity: 32 * 1024,
            ways: 8,
            hit_latency: 4,
        };
        assert_eq!(c.sets(64), 64);
    }

    #[test]
    fn invalid_configs_rejected() {
        let base = SimConfig::default();
        let mut c = base.clone();
        c.cores = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.core_clock_ghz = 0.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.line_size = 48;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.l1.capacity = 1000; // not a multiple
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.mshrs = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.memory.channels = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.memory.queue_depth = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn cycle_ns_roundtrip() {
        let c = SimConfig::default().with_core_clock(2.0);
        assert_eq!(c.ns_to_cycles(10.0), 20.0);
        assert_eq!(c.cycles_to_ns(20.0), 10.0);
    }

    #[test]
    fn knob_builders() {
        let c = SimConfig::default()
            .with_core_clock(2.1)
            .with_memory(MemoryConfig::ddr3_1333())
            .with_prefetcher(false);
        assert_eq!(c.core_clock_ghz, 2.1);
        assert_eq!(c.memory.mega_transfers, 1333.0);
        assert!(!c.prefetch.enabled);
    }
}
