//! Simulated multicore testbed for the memsense reproduction.
//!
//! The paper measures real Xeon E5-2600 servers with hardware performance
//! counters; this crate is the substitute substrate: a deterministic
//! discrete-event multicore simulator whose observable surface is exactly
//! the counter set the paper's methodology needs (`CPI_eff`, `MPI`, `MP`,
//! writebacks, bandwidth, utilization) and whose knobs are the ones the
//! paper turns (core clock, memory speed, core count, prefetcher).
//!
//! * [`config`] — machine description ([`SimConfig`]) and knobs.
//! * [`trace`] — the [`trace::InstructionStream`] contract workloads
//!   implement, built from [`trace::Op`]s.
//! * [`cache`] — set-associative write-back caches, three-level hierarchy.
//! * [`prefetch`] — stream prefetcher.
//! * [`mem`] — channel/bank DDR-style memory controller; queueing delay
//!   emerges from contention here.
//! * [`counters`] — performance counters and derived [`counters::Measurement`]s.
//! * [`engine`] — the [`Machine`] that ties it all together.
//!
//! # Examples
//!
//! Measure the CPI of a tiny load/compute kernel:
//!
//! ```
//! use memsense_sim::config::SimConfig;
//! use memsense_sim::engine::Machine;
//! use memsense_sim::trace::{Op, PatternStream};
//!
//! let config = SimConfig::xeon_like(1);
//! let stream = PatternStream::new(vec![Op::compute(), Op::load(0)]);
//! let mut machine = Machine::new(config, vec![Box::new(stream)])?;
//! machine.run_ops(10_000);
//! let counters = machine.total_counters();
//! assert!(counters.instructions >= 10_000);
//! # Ok::<(), memsense_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod counters;
pub mod engine;
pub mod mem;
pub mod prefetch;
pub mod record;
pub mod telemetry;
pub mod tiered;
pub mod tlb;
pub mod trace;

pub use config::SimConfig;
pub use counters::{Measurement, Sample};
pub use engine::Machine;
pub use trace::{AccessKind, InstructionStream, Op};

/// Error type for the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration constraint was violated.
    InvalidConfig(&'static str),
    /// The number of instruction streams did not match the core count.
    StreamCountMismatch {
        /// Configured hardware threads.
        cores: u32,
        /// Streams supplied.
        streams: usize,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            SimError::StreamCountMismatch { cores, streams } => write!(
                f,
                "stream count mismatch: {cores} cores but {streams} streams"
            ),
        }
    }
}

impl std::error::Error for SimError {}
