//! DDR-style memory controller.
//!
//! Cache lines interleave across channels; each channel has a shared data
//! bus and several banks. A request occupies a bank for the row access, then
//! the bus for the line transfer; switching the bus between reads and writes
//! costs a turnaround penalty. Queueing delay *emerges* from bank and bus
//! contention — this is the mechanism behind the Fig. 7 curve.

use crate::config::MemoryConfig;

/// A completed memory request's timing breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemResponse {
    /// Absolute completion time (ns).
    pub complete_ns: f64,
    /// Total latency from issue to completion (ns).
    pub latency_ns: f64,
}

#[derive(Debug, Clone)]
struct Channel {
    bank_free_ns: Vec<f64>,
    open_row: Vec<Option<u64>>,
    bus_free_ns: f64,
    last_was_write: bool,
}

/// Aggregate memory-controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemStats {
    /// Completed read (line fetch) requests.
    pub reads: u64,
    /// Completed write (write-back / non-temporal / DMA) requests.
    pub writes: u64,
    /// Bytes moved by reads.
    pub read_bytes: u64,
    /// Bytes moved by writes.
    pub write_bytes: u64,
    /// Sum of read latencies (ns), for average-latency derivation.
    pub total_read_latency_ns: f64,
    /// Total data-bus busy time across channels (ns), for utilization.
    pub bus_busy_ns: f64,
    /// Row-buffer hits (open-page policy only).
    pub row_hits: u64,
    /// Row-buffer conflicts / first activations (open-page policy only).
    pub row_conflicts: u64,
}

impl MemStats {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Average read latency in ns (0 when no reads completed).
    pub fn avg_read_latency_ns(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.total_read_latency_ns / self.reads as f64
        }
    }

    /// Field-wise difference (`self − earlier`), for interval sampling.
    pub fn delta(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            read_bytes: self.read_bytes - earlier.read_bytes,
            write_bytes: self.write_bytes - earlier.write_bytes,
            total_read_latency_ns: self.total_read_latency_ns - earlier.total_read_latency_ns,
            bus_busy_ns: self.bus_busy_ns - earlier.bus_busy_ns,
            row_hits: self.row_hits - earlier.row_hits,
            row_conflicts: self.row_conflicts - earlier.row_conflicts,
        }
    }
}

/// The memory controller shared by all cores and I/O agents.
#[derive(Debug, Clone)]
pub struct MemoryController {
    config: MemoryConfig,
    line_size: usize,
    transfer_ns: f64,
    channels: Vec<Channel>,
    line_shift: u32,
    stats: MemStats,
}

impl MemoryController {
    /// Builds a controller for the given channel configuration and line size.
    pub fn new(config: MemoryConfig, line_size: usize) -> Self {
        let transfer_ns = config.transfer_ns(line_size);
        let channels = (0..config.channels)
            .map(|_| Channel {
                // memsense-lint: allow(no-per-op-alloc) — one-time controller build
                bank_free_ns: vec![0.0; config.banks_per_channel as usize],
                // memsense-lint: allow(no-per-op-alloc) — one-time controller build
                open_row: vec![None; config.banks_per_channel as usize],
                bus_free_ns: 0.0,
                last_was_write: false,
            })
            .collect();
        MemoryController {
            config,
            line_size,
            transfer_ns,
            channels,
            line_shift: line_size.trailing_zeros(),
            stats: MemStats::default(),
        }
    }

    /// Issues a line-sized request at absolute time `now_ns` and returns its
    /// completion time. Reads contribute to latency statistics; writes are
    /// posted (fire-and-forget) but still occupy banks and the bus.
    pub fn request(&mut self, now_ns: f64, addr: u64, write: bool) -> MemResponse {
        let line = addr >> self.line_shift;
        // Fold higher address bits into the channel/bank selection (real
        // controllers hash) so strided streams don't alias onto a subset of
        // channels.
        let hashed = line ^ (line >> 4) ^ (line >> 9) ^ (line >> 15);
        let nchan = self.channels.len() as u64;
        let nbanks = self.config.banks_per_channel as u64;
        // Power-of-two counts (the common DDR geometry) select with
        // mask/shift instead of two 64-bit divisions; the quotient/remainder
        // split is bit-identical in that case.
        let (chan_idx, bank_idx) = if nchan.is_power_of_two() && nbanks.is_power_of_two() {
            (
                (hashed & (nchan - 1)) as usize,
                ((hashed >> nchan.trailing_zeros()) & (nbanks - 1)) as usize,
            )
        } else {
            (
                (hashed % nchan) as usize,
                ((hashed / nchan) % nbanks) as usize,
            )
        };
        let chan = &mut self.channels[chan_idx];

        // Request path to the controller.
        let arrive = now_ns + self.config.controller_overhead_ns * 0.5;

        // Row access occupies the bank; under an open-page policy a
        // row-buffer hit pays only the column access.
        let access_ns = match self.config.row_policy {
            crate::config::RowPolicy::ClosedPage => self.config.bank_access_ns,
            crate::config::RowPolicy::OpenPage {
                hit_ns,
                miss_ns,
                row_bytes,
            } => {
                let row = addr / row_bytes;
                let slot = &mut chan.open_row[bank_idx];
                if *slot == Some(row) {
                    self.stats.row_hits += 1;
                    hit_ns
                } else {
                    *slot = Some(row);
                    self.stats.row_conflicts += 1;
                    miss_ns
                }
            }
        };
        let mut bank_start = arrive.max(chan.bank_free_ns[bank_idx]);
        // Refresh blackout: a request landing inside the per-channel
        // refresh window waits for it to end.
        if let Some(refresh) = self.config.refresh {
            let phase = bank_start.rem_euclid(refresh.interval_ns);
            if phase < refresh.duration_ns {
                bank_start += refresh.duration_ns - phase;
            }
        }
        let bank_done = bank_start + access_ns;
        chan.bank_free_ns[bank_idx] = bank_done;

        // Line transfer occupies the shared bus; direction switches pay a
        // turnaround penalty. Refresh blocks the bus as well as the banks
        // (the whole rank is unavailable).
        let mut bus_start = bank_done.max(chan.bus_free_ns);
        if chan.last_was_write != write {
            bus_start += self.config.turnaround_ns;
        }
        if let Some(refresh) = self.config.refresh {
            let phase = bus_start.rem_euclid(refresh.interval_ns);
            if phase < refresh.duration_ns {
                bus_start += refresh.duration_ns - phase;
            }
        }
        let bus_done = bus_start + self.transfer_ns;
        chan.bus_free_ns = bus_done;
        chan.last_was_write = write;
        self.stats.bus_busy_ns += self.transfer_ns;

        // Response path back to the core.
        let complete_ns = bus_done + self.config.controller_overhead_ns * 0.5;
        let latency_ns = complete_ns - now_ns;

        if write {
            self.stats.writes += 1;
            self.stats.write_bytes += self.line_size as u64;
        } else {
            self.stats.reads += 1;
            self.stats.read_bytes += self.line_size as u64;
            self.stats.total_read_latency_ns += latency_ns;
        }

        MemResponse {
            complete_ns,
            latency_ns,
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Unloaded latency for this configuration (ns).
    pub fn unloaded_latency_ns(&self) -> f64 {
        self.config.unloaded_latency_ns(self.line_size)
    }

    /// Peak bandwidth across channels (GB/s).
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.config.peak_bandwidth_gbps()
    }

    /// Delivered bandwidth over a window (GB/s), given byte and time deltas.
    pub fn bandwidth_gbps(bytes: u64, window_ns: f64) -> f64 {
        if window_ns <= 0.0 {
            0.0
        } else {
            bytes as f64 / window_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> MemoryController {
        MemoryController::new(MemoryConfig::ddr3_1867(), 64)
    }

    #[test]
    fn idle_request_sees_unloaded_latency() {
        let mut m = ctrl();
        let r = m.request(0.0, 0x1000, false);
        assert!(
            (r.latency_ns - m.unloaded_latency_ns()).abs() < 1e-9,
            "latency {} vs unloaded {}",
            r.latency_ns,
            m.unloaded_latency_ns()
        );
    }

    #[test]
    fn spaced_requests_stay_unloaded() {
        let mut m = ctrl();
        for i in 0..100u64 {
            let r = m.request(i as f64 * 1000.0, i * 64, false);
            assert!((r.latency_ns - m.unloaded_latency_ns()).abs() < 1e-6);
        }
    }

    #[test]
    fn same_bank_requests_queue() {
        let mut m = ctrl();
        // Same channel, same bank: second request waits for the bank.
        let a = m.request(0.0, 0, false);
        let b = m.request(0.0, 0, false);
        assert!(
            b.latency_ns > a.latency_ns + 30.0,
            "bank conflict must queue"
        );
    }

    #[test]
    fn different_channels_do_not_interfere() {
        let mut m = ctrl();
        let a = m.request(0.0, 0, false);
        let b = m.request(0.0, 64, false); // next line → next channel
        assert!((a.latency_ns - b.latency_ns).abs() < 1e-9);
    }

    #[test]
    fn burst_latency_grows_with_load() {
        let mut m = ctrl();
        // Fire a dense burst at one instant: average latency must exceed
        // unloaded (queueing), and the tail must be slower than the head.
        let mut last = 0.0;
        for i in 0..256u64 {
            let r = m.request(0.0, i * 64, false);
            last = r.latency_ns;
        }
        assert!(last > m.unloaded_latency_ns() * 2.0);
    }

    #[test]
    fn read_write_turnaround_penalty() {
        let mut m = ctrl();
        // Alternate read/write on the same channel back-to-back.
        let _ = m.request(0.0, 0, false);
        let w = m.request(0.0, 4 * 64, true); // same channel (4 channels)
        let mut m2 = ctrl();
        let _ = m2.request(0.0, 0, false);
        let r2 = m2.request(0.0, 4 * 64, false);
        assert!(
            w.complete_ns > r2.complete_ns,
            "direction switch must cost turnaround"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut m = ctrl();
        m.request(0.0, 0, false);
        m.request(0.0, 64, true);
        let s = m.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.read_bytes, 64);
        assert_eq!(s.write_bytes, 64);
        assert_eq!(s.total_bytes(), 128);
        assert!(s.avg_read_latency_ns() > 0.0);
    }

    #[test]
    fn stats_delta() {
        let mut m = ctrl();
        m.request(0.0, 0, false);
        let snap = m.stats();
        m.request(100.0, 64, false);
        let d = m.stats().delta(&snap);
        assert_eq!(d.reads, 1);
        assert_eq!(d.read_bytes, 64);
    }

    #[test]
    fn sustained_throughput_below_peak_near_bank_limit() {
        // Saturating all channels with dense lines: aggregate throughput
        // sits below the bus peak, limited by bank service — this is where
        // the ~70–85% efficiency of the paper's Fig. 8 baseline comes from.
        let mut m = ctrl();
        let mut t = 0.0;
        let n = 16_000u64;
        let mut done = 0.0f64;
        for i in 0..n {
            let r = m.request(t, i * 64, false);
            done = done.max(r.complete_ns);
            t += 0.25; // offered far faster than service
        }
        let gbps = (n * 64) as f64 / done;
        let bus_peak = 4.0 * 1866.7e6 * 8.0 / 1e9;
        assert!(gbps < bus_peak, "got {gbps}, bus peak {bus_peak}");
        assert!(
            gbps > bus_peak * 0.6,
            "got {gbps} GB/s, should approach the bus peak {bus_peak}"
        );
    }

    #[test]
    fn open_page_row_hit_is_faster_than_closed_page() {
        use crate::config::RowPolicy;
        let second_latency = |policy: RowPolicy| {
            let mut cfg = MemoryConfig::ddr3_1867();
            cfg.row_policy = policy;
            let mut m = MemoryController::new(cfg, 64);
            // Two back-to-back requests to the same line: same bank, same
            // row. The second queues behind the first in the bank.
            m.request(0.0, 0x42_0000, false);
            let r = m.request(0.0, 0x42_0000, false);
            (r.latency_ns, m.stats())
        };
        let (closed, closed_stats) = second_latency(RowPolicy::ClosedPage);
        let (open, open_stats) = second_latency(RowPolicy::open_page_ddr3());
        assert_eq!(closed_stats.row_hits, 0);
        assert_eq!(open_stats.row_hits, 1, "second access hits the open row");
        assert!(
            open < closed,
            "row hit must be cheaper: open {open} vs closed {closed}"
        );
    }

    #[test]
    fn open_page_random_mostly_conflicts() {
        use crate::config::RowPolicy;
        let mut cfg = MemoryConfig::ddr3_1867();
        cfg.row_policy = RowPolicy::open_page_ddr3();
        let mut m = MemoryController::new(cfg, 64);
        let mut x = 12345u64;
        for i in 0..4000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            m.request(i as f64 * 2.0, (x % (1 << 30)) & !63, false);
        }
        let s = m.stats();
        let hit_rate = s.row_hits as f64 / (s.row_hits + s.row_conflicts) as f64;
        assert!(hit_rate < 0.2, "random traffic rarely row-hits: {hit_rate}");
    }

    #[test]
    fn refresh_blackout_delays_requests_inside_window() {
        use crate::config::RefreshConfig;
        let mut cfg = MemoryConfig::ddr3_1867();
        cfg.refresh = Some(RefreshConfig {
            interval_ns: 1_000.0,
            duration_ns: 200.0,
        });
        let mut m = MemoryController::new(cfg, 64);
        // Arrives at t=1010 + overhead 14 -> inside the [1000, 1200) window.
        let hit = m.request(1_010.0, 0, false);
        // Same timing, no refresh configured:
        let mut free = MemoryController::new(MemoryConfig::ddr3_1867(), 64);
        let base = free.request(1_010.0, 0, false);
        assert!(
            hit.latency_ns > base.latency_ns + 100.0,
            "refresh wait: {} vs {}",
            hit.latency_ns,
            base.latency_ns
        );
        // A request far from the window is unaffected.
        let clear = m.request(10_500.0, 64 * 9, false);
        assert!((clear.latency_ns - base.latency_ns).abs() < 1.0);
    }

    #[test]
    fn refresh_costs_steady_state_bandwidth() {
        use crate::config::RefreshConfig;
        let run = |refresh: Option<RefreshConfig>| {
            let mut cfg = MemoryConfig::ddr3_1867();
            cfg.refresh = refresh;
            let mut m = MemoryController::new(cfg, 64);
            let mut t = 0.0;
            let n = 30_000u64;
            let mut done = 0.0f64;
            for i in 0..n {
                let r = m.request(t, i * 64, false);
                done = done.max(r.complete_ns);
                t += 0.25;
            }
            (n * 64) as f64 / done
        };
        let without = run(None);
        let with = run(Some(RefreshConfig::ddr3_4gb()));
        let loss = 1.0 - with / without;
        assert!(
            (0.01..0.10).contains(&loss),
            "refresh costs a few percent of bandwidth: {loss}"
        );
    }

    #[test]
    fn bandwidth_helper() {
        assert_eq!(MemoryController::bandwidth_gbps(1000, 0.0), 0.0);
        assert!((MemoryController::bandwidth_gbps(64, 10.0) - 6.4).abs() < 1e-12);
    }
}
