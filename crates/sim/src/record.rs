//! Trace recording and replay.
//!
//! The paper's methodology requires running the *same* workload at many
//! operating points (frequency × memory-speed sweeps). For generated
//! workloads that is guaranteed by seeding; [`Recorder`] and [`ReplayStream`]
//! extend the guarantee to arbitrary streams by capturing a finite op trace
//! once and replaying it (looped) everywhere — also useful for regression
//! corpora and for feeding externally-captured traces into the simulator.

use std::sync::Arc;

use crate::trace::{InstructionStream, Op};

/// A finite recorded trace.
///
/// The op buffer is `Arc`-shared: cloning a trace or building replay streams
/// from it never copies the ops, so an N-core replay holds one buffer, not N.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    ops: Arc<[Op]>,
    io_bytes_per_instruction: f64,
}

impl Trace {
    /// Records `n` ops from `stream`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (a replayable trace needs at least one op).
    pub fn record<S: InstructionStream + ?Sized>(stream: &mut S, n: usize) -> Self {
        assert!(n > 0, "trace must contain at least one op");
        let ops: Vec<Op> = (0..n).map(|_| stream.next_op()).collect();
        Trace {
            ops: ops.into(),
            io_bytes_per_instruction: stream.io_bytes_per_instruction(),
        }
    }

    /// Builds a trace directly from ops (e.g. parsed from an external file).
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn from_ops(ops: Vec<Op>, io_bytes_per_instruction: f64) -> Self {
        assert!(!ops.is_empty(), "trace must contain at least one op");
        Trace {
            ops: ops.into(),
            io_bytes_per_instruction,
        }
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty (never true for constructed traces).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded ops.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Instructions (non-idle ops) in the trace.
    pub fn instructions(&self) -> usize {
        self.ops.iter().filter(|o| !o.idle).count()
    }

    /// Memory accesses in the trace.
    pub fn memory_accesses(&self) -> usize {
        self.ops.iter().filter(|o| o.access.is_some()).count()
    }

    /// Creates a looping replay stream over this trace. The stream shares
    /// the recorded op buffer — no copy per replaying core.
    pub fn replay(&self) -> ReplayStream {
        ReplayStream {
            ops: Arc::clone(&self.ops),
            io_bytes_per_instruction: self.io_bytes_per_instruction,
            next: 0,
        }
    }
}

/// Error from parsing a textual trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl core::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

impl Trace {
    /// Serializes the trace to a simple line-oriented text format:
    ///
    /// ```text
    /// # memsense trace v1
    /// io 0.07
    /// c 0          # compute, extra cycles
    /// i 120        # idle cycles
    /// l 1a2b40     # independent load (hex address)
    /// d 1a2b80     # dependent load
    /// s 40         # store
    /// n 3000       # non-temporal store
    /// ```
    ///
    /// Extra compute cycles on memory ops are appended as a second field.
    pub fn to_text(&self) -> String {
        use crate::trace::AccessKind;
        let mut out = String::with_capacity(self.ops.len() * 10 + 32);
        out.push_str("# memsense trace v1\n");
        out.push_str(&format!("io {}\n", self.io_bytes_per_instruction));
        for op in self.ops.iter() {
            let line = if op.idle {
                format!("i {}", op.extra_cycles)
            } else {
                match op.access {
                    None => format!("c {}", op.extra_cycles),
                    Some((addr, AccessKind::Load { dependent: false })) => {
                        format!("l {addr:x} {}", op.extra_cycles)
                    }
                    Some((addr, AccessKind::Load { dependent: true })) => {
                        format!("d {addr:x} {}", op.extra_cycles)
                    }
                    Some((addr, AccessKind::Store)) => format!("s {addr:x} {}", op.extra_cycles),
                    Some((addr, AccessKind::NonTemporalStore)) => {
                        format!("n {addr:x} {}", op.extra_cycles)
                    }
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Parses a trace from the [`Trace::to_text`] format. Blank lines and
    /// `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] describing the first malformed line, or
    /// an empty trace.
    pub fn from_text(text: &str) -> Result<Trace, ParseTraceError> {
        let mut ops = Vec::new();
        let mut io = 0.0f64;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |message: &str| ParseTraceError {
                line: idx + 1,
                message: message.to_string(),
            };
            let mut fields = line.split_whitespace();
            let kind = fields.next().ok_or_else(|| err("empty record"))?;
            match kind {
                "io" => {
                    io = fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("io needs a rate"))?;
                }
                "c" | "i" => {
                    let cycles: u32 = fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("expected cycle count"))?;
                    ops.push(if kind == "c" {
                        Op::compute_heavy(cycles)
                    } else {
                        Op::idle(cycles)
                    });
                }
                "l" | "d" | "s" | "n" => {
                    let addr = fields
                        .next()
                        .and_then(|v| u64::from_str_radix(v, 16).ok())
                        .ok_or_else(|| err("expected hex address"))?;
                    let extra: u32 = match fields.next() {
                        Some(v) => v.parse().map_err(|_| err("bad extra cycles"))?,
                        None => 0,
                    };
                    let op = match kind {
                        "l" => Op::load(addr),
                        "d" => Op::dependent_load(addr),
                        "s" => Op::store(addr),
                        _ => Op::nt_store(addr),
                    };
                    ops.push(op.with_extra_cycles(extra));
                }
                other => return Err(err(&format!("unknown record kind: {other}"))),
            }
        }
        if ops.is_empty() {
            return Err(ParseTraceError {
                line: 0,
                message: "trace contains no ops".to_string(),
            });
        }
        Ok(Trace::from_ops(ops, io))
    }
}

/// An [`InstructionStream`] that loops over a recorded [`Trace`] forever.
/// Clones share the op buffer; each clone keeps a private cursor.
#[derive(Debug, Clone)]
pub struct ReplayStream {
    ops: Arc<[Op]>,
    io_bytes_per_instruction: f64,
    next: usize,
}

impl InstructionStream for ReplayStream {
    fn next_op(&mut self) -> Op {
        let op = self.ops[self.next];
        self.next = (self.next + 1) % self.ops.len();
        op
    }

    fn phase(&self) -> &str {
        "replay"
    }

    fn io_bytes_per_instruction(&self) -> f64 {
        self.io_bytes_per_instruction
    }
}

/// Wraps a stream, recording every op it yields while passing it through —
/// capture a trace *and* run it in the same simulation.
#[derive(Debug)]
pub struct Recorder<S> {
    inner: S,
    recorded: Vec<Op>,
    limit: usize,
}

impl<S: InstructionStream> Recorder<S> {
    /// Wraps `inner`, recording at most `limit` ops.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn new(inner: S, limit: usize) -> Self {
        assert!(limit > 0, "recorder limit must be positive");
        Recorder {
            inner,
            recorded: Vec::with_capacity(limit.min(1 << 20)),
            limit,
        }
    }

    /// Finalizes into the captured trace (everything seen so far).
    ///
    /// # Panics
    ///
    /// Panics if no ops were recorded yet.
    pub fn into_trace(self) -> Trace {
        let io = self.inner.io_bytes_per_instruction();
        Trace::from_ops(self.recorded, io)
    }

    /// Ops captured so far.
    pub fn recorded_len(&self) -> usize {
        self.recorded.len()
    }
}

impl<S: InstructionStream> InstructionStream for Recorder<S> {
    fn next_op(&mut self) -> Op {
        let op = self.inner.next_op();
        if self.recorded.len() < self.limit {
            self.recorded.push(op);
        }
        op
    }

    fn phase(&self) -> &str {
        self.inner.phase()
    }

    fn io_bytes_per_instruction(&self) -> f64 {
        self.inner.io_bytes_per_instruction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::PatternStream;

    fn pattern() -> PatternStream {
        PatternStream::new(vec![Op::compute(), Op::load(64), Op::store(4096)]).with_io_rate(1.5)
    }

    #[test]
    fn record_and_replay_identical() {
        let mut original = pattern();
        let trace = Trace::record(&mut original, 9);
        assert_eq!(trace.len(), 9);
        assert_eq!(trace.instructions(), 9);
        assert_eq!(trace.memory_accesses(), 6);

        let mut replay = trace.replay();
        let mut fresh = pattern();
        for _ in 0..30 {
            assert_eq!(replay.next_op(), fresh.next_op());
        }
        assert_eq!(replay.io_bytes_per_instruction(), 1.5);
        assert_eq!(replay.phase(), "replay");
    }

    #[test]
    fn replay_loops() {
        let trace = Trace::from_ops(vec![Op::compute(), Op::load(0)], 0.0);
        let mut r = trace.replay();
        assert_eq!(r.next_op(), Op::compute());
        assert_eq!(r.next_op(), Op::load(0));
        assert_eq!(r.next_op(), Op::compute());
    }

    #[test]
    fn recorder_passthrough_and_capture() {
        let mut rec = Recorder::new(pattern(), 5);
        let seen: Vec<Op> = (0..8).map(|_| rec.next_op()).collect();
        assert_eq!(rec.recorded_len(), 5, "capped at limit");
        let trace = rec.into_trace();
        assert_eq!(trace.ops(), &seen[..5]);
        assert_eq!(trace.replay().io_bytes_per_instruction(), 1.5);
    }

    #[test]
    fn replayed_trace_drives_machine_deterministically() {
        use crate::config::SimConfig;
        use crate::engine::Machine;
        let mut src = pattern();
        let trace = Trace::record(&mut src, 64);
        let run = |t: &Trace| {
            let cfg = SimConfig::xeon_like(1);
            let mut m = Machine::new(cfg, vec![Box::new(t.replay())]).unwrap();
            m.run_ops(1_000);
            let c = m.total_counters();
            (c.instructions, c.busy_ns.to_bits())
        };
        assert_eq!(run(&trace), run(&trace));
    }

    #[test]
    fn text_roundtrip_preserves_trace() {
        let mut src = pattern();
        let trace = Trace::record(&mut src, 24);
        let text = trace.to_text();
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn text_roundtrip_all_op_kinds() {
        let trace = Trace::from_ops(
            vec![
                Op::compute(),
                Op::compute_heavy(7),
                Op::idle(100),
                Op::load(0x1a2b40),
                Op::dependent_load(0xdead00).with_extra_cycles(2),
                Op::store(0x40),
                Op::nt_store(0x3000),
            ],
            0.5,
        );
        let parsed = Trace::from_text(&trace.to_text()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn text_parser_rejects_garbage() {
        let err = Trace::from_text("q 12\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unknown record"));
        let err = Trace::from_text("l zz\n").unwrap_err();
        assert!(err.message.contains("hex"));
        let err = Trace::from_text("# just a comment\n").unwrap_err();
        assert!(err.message.contains("no ops"));
    }

    #[test]
    fn text_parser_skips_comments_and_blanks() {
        let t = Trace::from_text("# header\n\nc 0  # trailing\n\nl ff\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.ops()[1], Op::load(0xff));
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_trace_rejected() {
        let _ = Trace::from_ops(vec![], 0.0);
    }

    #[test]
    fn idle_ops_not_counted_as_instructions() {
        let trace = Trace::from_ops(vec![Op::compute(), Op::idle(10)], 0.0);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.instructions(), 1);
    }
}
