//! Stream prefetcher.
//!
//! The paper attributes the HPC class's low blocking factor to regular data
//! access making "prefetching highly effective" (Sec. VI.A), and proposes
//! measuring a prefetcher's quality by the blocking-factor reduction it buys
//! (Sec. VII). This detector recognizes ascending or descending miss streams
//! within a 4 KiB page and issues prefetches a configurable degree ahead.

use crate::config::PrefetchConfig;

const PAGE_SHIFT: u32 = 12;

#[derive(Debug, Clone, Copy)]
struct Stream {
    page: u64,
    last_line: u64,
    direction: i64,
    confidence: u32,
    last_use: u64,
}

/// A per-thread stream prefetcher.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    config: PrefetchConfig,
    streams: Vec<Stream>,
    line_shift: u32,
    clock: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher for the given line size.
    pub fn new(config: PrefetchConfig, line_size: usize) -> Self {
        StreamPrefetcher {
            config,
            streams: Vec::with_capacity(config.streams),
            line_shift: line_size.trailing_zeros(),
            clock: 0,
            issued: 0,
        }
    }

    /// Observes a demand LLC miss at `addr` and returns the line-aligned
    /// addresses that should be prefetched (empty when disabled or not yet
    /// trained).
    pub fn on_miss(&mut self, addr: u64) -> Vec<u64> {
        // memsense-lint: allow(no-per-op-alloc) — convenience wrapper; the
        // engine's hot path uses `on_miss_into` with a reused scratch buffer
        let mut out = Vec::new();
        self.on_miss_into(addr, &mut out);
        out
    }

    /// As [`StreamPrefetcher::on_miss`], but writes the prefetch targets
    /// into `out` (cleared first). With a reused scratch buffer the call is
    /// allocation-free — the form the engine's hot path uses.
    pub fn on_miss_into(&mut self, addr: u64, out: &mut Vec<u64>) {
        out.clear();
        if !self.config.enabled {
            return;
        }
        self.clock += 1;
        let line = addr >> self.line_shift;
        let page = line >> (PAGE_SHIFT - self.line_shift);

        if let Some(s) = self.streams.iter_mut().find(|s| s.page == page) {
            s.last_use = self.clock;
            let delta = line as i64 - s.last_line as i64;
            if delta != 0 && delta.signum() == s.direction.signum() && delta.abs() <= 4 {
                s.confidence += 1;
            } else if delta != 0 {
                s.direction = delta.signum();
                s.confidence = 1;
            }
            s.last_line = line;
            if s.confidence >= self.config.train_threshold {
                let dir = s.direction;
                let shift = self.line_shift;
                for k in 1..=self.config.degree as i64 {
                    let target = line as i64 + dir * k;
                    if target < 0 {
                        continue;
                    }
                    let target = target as u64;
                    // Stay within the page, as hardware prefetchers do.
                    if target >> (PAGE_SHIFT - shift) != page {
                        continue;
                    }
                    out.push(target << shift);
                }
                self.issued += out.len() as u64;
            }
            return;
        }

        // New stream: evict LRU slot if full.
        if self.streams.len() == self.config.streams {
            if let Some(lru) = self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_use)
                .map(|(i, _)| i)
            {
                self.streams.swap_remove(lru);
            }
        }
        self.streams.push(Stream {
            page,
            last_line: line,
            direction: 1,
            confidence: 0,
            last_use: self.clock,
        });
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StreamPrefetcher {
        let cfg = PrefetchConfig {
            degree: 4,
            ..PrefetchConfig::default()
        };
        StreamPrefetcher::new(cfg, 64)
    }

    #[test]
    fn sequential_stream_trains_and_prefetches() {
        let mut p = pf();
        assert!(p.on_miss(0x0000).is_empty());
        assert!(
            p.on_miss(0x0040).is_empty(),
            "first delta only builds confidence"
        );
        let out = p.on_miss(0x0080);
        assert_eq!(out, vec![0x00c0, 0x0100, 0x0140, 0x0180]);
        assert_eq!(p.issued(), 4);
    }

    #[test]
    fn descending_stream_detected() {
        let mut p = pf();
        p.on_miss(0x0f00);
        p.on_miss(0x0ec0);
        let out = p.on_miss(0x0e80);
        assert_eq!(out[0], 0x0e40);
        assert!(out.iter().all(|&a| a < 0x0e80));
    }

    #[test]
    fn random_misses_never_train() {
        let mut p = pf();
        // Far-apart addresses in different pages.
        for addr in [0x10000u64, 0x50000, 0x90000, 0x20000, 0x70000] {
            assert!(p.on_miss(addr).is_empty());
        }
    }

    #[test]
    fn prefetches_stay_in_page() {
        let mut p = pf();
        p.on_miss(0x0f00);
        p.on_miss(0x0f40);
        let out = p.on_miss(0x0f80);
        // Next lines would cross the 4 KiB boundary at 0x1000.
        assert_eq!(out, vec![0x0fc0]);
    }

    #[test]
    fn disabled_prefetcher_silent() {
        let cfg = PrefetchConfig {
            enabled: false,
            ..PrefetchConfig::default()
        };
        let mut p = StreamPrefetcher::new(cfg, 64);
        p.on_miss(0x0000);
        p.on_miss(0x0040);
        assert!(p.on_miss(0x0080).is_empty());
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn stream_table_evicts_lru() {
        let cfg = PrefetchConfig {
            degree: 4,
            streams: 2,
            ..PrefetchConfig::default()
        };
        let mut p = StreamPrefetcher::new(cfg, 64);
        p.on_miss(0x0_0000); // page 0
        p.on_miss(0x1_0000); // page 16
        p.on_miss(0x2_0000); // page 32 — evicts page 0 (LRU)
                             // Re-missing page 0 must retrain from scratch.
        assert!(p.on_miss(0x0_0000).is_empty());
        assert!(p.on_miss(0x0_0040).is_empty());
        assert!(!p.on_miss(0x0_0080).is_empty());
    }

    #[test]
    fn direction_change_resets_confidence() {
        let mut p = pf();
        p.on_miss(0x0000);
        p.on_miss(0x0040);
        p.on_miss(0x0080); // trained ascending
        assert!(p.on_miss(0x0040).is_empty(), "reversal drops confidence");
    }
}
