//! Two-tier memory for the simulator (paper Sec. VII).
//!
//! The paper's Eq. 5 models hierarchical memories analytically; this module
//! lets the simulator *measure* one: a DRAM-cache "near tier" (a large
//! set-associative array of cache lines with its own access latency) in
//! front of a slower "far tier" (non-volatile or remote memory). LLC misses
//! first probe the near tier; near-tier misses pay the far latency and
//! install into the near tier, evicting (and, when dirty, writing back)
//! older lines.
//!
//! The tier sits in front of a [`MemoryController`], so far-tier accesses
//! still experience channel/bank queueing — the far tier is typically
//! narrower as well as slower.

use crate::cache::{Lookup, SetAssocCache};
use crate::config::{CacheConfig, MemoryConfig};
use crate::mem::{MemResponse, MemoryController};

/// Configuration of a two-tier memory.
#[derive(Debug, Clone, PartialEq)]
pub struct TieredMemConfig {
    /// Near-tier capacity in bytes (a DRAM cache).
    pub near_capacity: usize,
    /// Near-tier associativity.
    pub near_ways: usize,
    /// Loaded latency of a near-tier hit (ns) — flat, the near tier is
    /// assumed to have abundant bandwidth.
    pub near_latency_ns: f64,
    /// Far-tier channel timing (typically fewer/slower channels).
    pub far: MemoryConfig,
}

impl TieredMemConfig {
    /// A scaled-down demo: 256 KiB near tier at 60 ns over a 2-channel
    /// far tier with 300 ns-class latency.
    pub fn dram_cache_over_nvm() -> Self {
        let mut far = MemoryConfig::ddr3_1333();
        far.channels = 2;
        far.bank_access_ns = 250.0;
        far.controller_overhead_ns = 45.0;
        TieredMemConfig {
            near_capacity: 256 * 1024,
            near_ways: 16,
            near_latency_ns: 60.0,
            far,
        }
    }
}

/// Statistics of the tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Requests satisfied by the near tier.
    pub near_hits: u64,
    /// Requests that went to the far tier.
    pub far_accesses: u64,
    /// Dirty near-tier victims written back to the far tier.
    pub writebacks: u64,
}

impl TierStats {
    /// Near-tier hit fraction in `[0, 1]` (0 when unused).
    pub fn hit_fraction(&self) -> f64 {
        let total = self.near_hits + self.far_accesses;
        if total == 0 {
            0.0
        } else {
            self.near_hits as f64 / total as f64
        }
    }
}

/// A near tier fronting a far-tier memory controller.
#[derive(Debug, Clone)]
pub struct TieredMemory {
    near: SetAssocCache,
    near_latency_ns: f64,
    far: MemoryController,
    stats: TierStats,
}

impl TieredMemory {
    /// Builds the tier; geometry must satisfy the usual power-of-two set
    /// constraint.
    ///
    /// # Panics
    ///
    /// Panics on invalid near-tier geometry (non-power-of-two set count).
    pub fn new(config: &TieredMemConfig, line_size: usize) -> Self {
        let near_cfg = CacheConfig {
            capacity: config.near_capacity,
            ways: config.near_ways,
            hit_latency: 0, // latency carried separately in ns
        };
        TieredMemory {
            near: SetAssocCache::new(&near_cfg, line_size),
            near_latency_ns: config.near_latency_ns,
            far: MemoryController::new(config.far, line_size),
            stats: TierStats::default(),
        }
    }

    /// Serves a request at `now_ns`, returning its completion.
    pub fn request(&mut self, now_ns: f64, addr: u64, write: bool) -> MemResponse {
        match self.near.access(addr, write) {
            Lookup::Hit => {
                self.stats.near_hits += 1;
                MemResponse {
                    complete_ns: now_ns + self.near_latency_ns,
                    latency_ns: self.near_latency_ns,
                }
            }
            Lookup::Miss { writeback } => {
                self.stats.far_accesses += 1;
                if let Some(victim) = writeback {
                    self.stats.writebacks += 1;
                    self.far.request(now_ns, victim, true);
                }
                // Fetch from the far tier; the near tier's fill latency is
                // folded into the far access.
                self.far.request(now_ns, addr, write)
            }
        }
    }

    /// Tier statistics.
    pub fn stats(&self) -> TierStats {
        self.stats
    }

    /// Far-tier controller statistics.
    pub fn far_stats(&self) -> crate::mem::MemStats {
        self.far.stats()
    }

    /// Average observed latency across near and far accesses so far (ns).
    pub fn average_latency_ns(&self) -> f64 {
        let far = self.far_stats();
        let total = self.stats.near_hits + far.reads;
        if total == 0 {
            return 0.0;
        }
        (self.stats.near_hits as f64 * self.near_latency_ns + far.total_read_latency_ns)
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier() -> TieredMemory {
        TieredMemory::new(&TieredMemConfig::dram_cache_over_nvm(), 64)
    }

    #[test]
    fn first_access_goes_far_then_near() {
        let mut t = tier();
        let cold = t.request(0.0, 0x10_0000, false);
        assert!(
            cold.latency_ns > 200.0,
            "cold miss pays far latency: {}",
            cold.latency_ns
        );
        let warm = t.request(cold.complete_ns, 0x10_0000, false);
        assert!(
            (warm.latency_ns - 60.0).abs() < 1e-9,
            "near hit: {}",
            warm.latency_ns
        );
        assert_eq!(t.stats().near_hits, 1);
        assert_eq!(t.stats().far_accesses, 1);
    }

    #[test]
    fn working_set_within_near_tier_hits() {
        let mut t = tier();
        let lines = 256 * 1024 / 64 / 2; // half the near capacity
        let mut now = 0.0;
        for round in 0..3 {
            for i in 0..lines as u64 {
                let r = t.request(now, i * 64, false);
                now = r.complete_ns;
                if round > 0 {
                    assert!((r.latency_ns - 60.0).abs() < 1e-9, "round {round}");
                }
            }
        }
        assert!(t.stats().hit_fraction() > 0.6);
    }

    #[test]
    fn streaming_beyond_capacity_mostly_far() {
        let mut t = tier();
        let mut now = 0.0;
        for i in 0..20_000u64 {
            let r = t.request(now, i * 64, false);
            now = r.complete_ns;
        }
        assert!(
            t.stats().hit_fraction() < 0.05,
            "{}",
            t.stats().hit_fraction()
        );
    }

    #[test]
    fn dirty_near_victims_written_back_to_far() {
        let mut t = tier();
        let lines = (256 * 1024 / 64) as u64;
        let mut now = 0.0;
        // Dirty the whole near tier, then stream reads to evict it.
        for i in 0..lines {
            now = t.request(now, i * 64, true).complete_ns;
        }
        for i in lines..(lines * 3) {
            now = t.request(now, i * 64, false).complete_ns;
        }
        assert!(t.stats().writebacks > lines / 2, "{:?}", t.stats());
        assert!(t.far_stats().writes >= t.stats().writebacks);
    }

    #[test]
    fn average_latency_between_tiers() {
        let mut t = tier();
        let mut now = 0.0;
        // A mix: hot set (hits) + cold streaming (misses).
        for i in 0..5_000u64 {
            let addr = if i % 2 == 0 {
                (i % 64) * 64
            } else {
                (100_000 + i) * 64
            };
            now = t.request(now, addr, false).complete_ns;
        }
        let avg = t.average_latency_ns();
        assert!(avg > 60.0 && avg < 400.0, "avg {avg}");
    }

    #[test]
    fn eq5_predicts_measured_average_latency() {
        // Cross-check with the analytic Eq. 5 machinery: the measured
        // average latency matches hit_fraction × near + (1 − h) × far_avg.
        let mut t = tier();
        let mut now = 0.0;
        for i in 0..10_000u64 {
            let addr = if i % 3 != 0 {
                (i % 400) * 64
            } else {
                (50_000 + i) * 64
            };
            now = t.request(now, addr, false).complete_ns;
        }
        let h = t.stats().hit_fraction();
        let far = t.far_stats();
        let far_avg = far.total_read_latency_ns / far.reads as f64;
        let predicted = h * 60.0 + (1.0 - h) * far_avg;
        let measured = t.average_latency_ns();
        assert!(
            (predicted - measured).abs() / measured < 0.02,
            "Eq. 5 style mix: predicted {predicted} vs measured {measured}"
        );
    }
}
