//! Performance counters and derived measurements.
//!
//! The paper's methodology is counter-driven: `CPI_eff`, `MPI`, `MP`,
//! writeback rates, bandwidth, and utilization all come from hardware
//! performance counters sampled at 100 ms–1 s granularity (Secs. IV–V).
//! [`CoreCounters`] is the per-thread counter file; [`Measurement`] is the
//! derived view the modeling equations consume.

use std::collections::BTreeMap;

use crate::mem::MemStats;

/// An interned phase label: an index into a [`PhaseCounts`] table. The
/// engine's retire path counts instructions against a `PhaseId` instead of a
/// `String` key, so no allocation or string comparison tree walk happens per
/// op; names are resolved back only when a count table is materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseId(u32);

/// Per-thread instruction counts keyed by interned phase label.
///
/// Workloads expose at most a handful of phases ("map", "reduce", "gc", …),
/// so the intern table is a flat vector searched linearly on the rare label
/// change; the hot path is a single string equality against the label seen
/// by the previous retired instruction.
#[derive(Debug, Clone, Default)]
pub struct PhaseCounts {
    names: Vec<String>,
    counts: Vec<u64>,
    /// Index of the most recently resolved label — the fast-path guess.
    last: u32,
}

impl PhaseCounts {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its stable id.
    pub fn resolve(&mut self, name: &str) -> PhaseId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return PhaseId(i as u32);
        }
        self.names.push(name.to_string());
        self.counts.push(0);
        PhaseId(self.names.len() as u32 - 1)
    }

    /// Counts one retired instruction against `name`.
    ///
    /// Deliberately compares label *content* (not pointer identity): a
    /// stream may legally rebuild its label string in place between ops, so
    /// only a content match may take the fast path.
    #[inline]
    pub fn bump(&mut self, name: &str) {
        let last = self.last as usize;
        if let Some(n) = self.names.get(last) {
            if n == name {
                self.counts[last] += 1;
                return;
            }
        }
        let id = self.resolve(name);
        self.last = id.0;
        self.counts[id.0 as usize] += 1;
    }

    /// Counts `n` retired instructions against `name` — the run-grouped
    /// form of [`PhaseCounts::bump`]. A zero count is a no-op (the label is
    /// not even interned), so callers can flush runs unconditionally.
    /// Calling `bump_n(l, n)` leaves the table in exactly the state `n`
    /// successive `bump(l)` calls would.
    #[inline]
    pub fn bump_n(&mut self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        let last = self.last as usize;
        if let Some(l) = self.names.get(last) {
            if l == name {
                self.counts[last] += n;
                return;
            }
        }
        let id = self.resolve(name);
        self.last = id.0;
        self.counts[id.0 as usize] += n;
    }

    /// Instructions counted against `id`.
    pub fn count(&self, id: PhaseId) -> u64 {
        self.counts[id.0 as usize]
    }

    /// Whether no instructions have been counted.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Accumulates this table's counts into a name-keyed map (the
    /// measurement-facing view; ordering is the map's, i.e. lexicographic).
    pub fn merge_into(&self, total: &mut BTreeMap<String, u64>) {
        for (name, &n) in self.names.iter().zip(&self.counts) {
            *total.entry(name.clone()).or_insert(0) += n;
        }
    }
}

/// Raw per-thread event counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreCounters {
    /// Retired instructions.
    pub instructions: u64,
    /// Core busy time in nanoseconds (excludes halted/idle time).
    pub busy_ns: f64,
    /// Halted (idle) time in nanoseconds.
    pub idle_ns: f64,
    /// L1 data hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// Demand LLC misses (loads and stores reaching memory).
    pub llc_demand_misses: u64,
    /// Prefetch fills brought into the LLC.
    pub prefetch_fills: u64,
    /// Dirty-victim writebacks from the LLC to memory.
    pub writebacks: u64,
    /// Non-temporal stores sent straight to memory.
    pub nt_stores: u64,
    /// Sum of demand-miss load latencies (ns).
    pub demand_miss_latency_ns: f64,
    /// Number of latency-sampled demand misses.
    pub demand_miss_samples: u64,
    /// DMA bytes injected on behalf of this thread's I/O.
    pub io_bytes: u64,
    /// Cycles lost to memory stalls (window-full, MSHR, dependent loads).
    pub stall_ns: f64,
    /// Data-TLB misses (0 when the TLB model is disabled).
    pub tlb_misses: u64,
}

impl CoreCounters {
    /// Field-wise difference (`self − earlier`), for interval sampling.
    pub fn delta(&self, earlier: &CoreCounters) -> CoreCounters {
        CoreCounters {
            instructions: self.instructions - earlier.instructions,
            busy_ns: self.busy_ns - earlier.busy_ns,
            idle_ns: self.idle_ns - earlier.idle_ns,
            l1_hits: self.l1_hits - earlier.l1_hits,
            l2_hits: self.l2_hits - earlier.l2_hits,
            llc_hits: self.llc_hits - earlier.llc_hits,
            llc_demand_misses: self.llc_demand_misses - earlier.llc_demand_misses,
            prefetch_fills: self.prefetch_fills - earlier.prefetch_fills,
            writebacks: self.writebacks - earlier.writebacks,
            nt_stores: self.nt_stores - earlier.nt_stores,
            demand_miss_latency_ns: self.demand_miss_latency_ns - earlier.demand_miss_latency_ns,
            demand_miss_samples: self.demand_miss_samples - earlier.demand_miss_samples,
            io_bytes: self.io_bytes - earlier.io_bytes,
            stall_ns: self.stall_ns - earlier.stall_ns,
            tlb_misses: self.tlb_misses - earlier.tlb_misses,
        }
    }

    /// Accumulates another counter file into this one.
    pub fn merge(&mut self, other: &CoreCounters) {
        self.instructions += other.instructions;
        self.busy_ns += other.busy_ns;
        self.idle_ns += other.idle_ns;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.llc_hits += other.llc_hits;
        self.llc_demand_misses += other.llc_demand_misses;
        self.prefetch_fills += other.prefetch_fills;
        self.writebacks += other.writebacks;
        self.nt_stores += other.nt_stores;
        self.demand_miss_latency_ns += other.demand_miss_latency_ns;
        self.demand_miss_samples += other.demand_miss_samples;
        self.io_bytes += other.io_bytes;
        self.stall_ns += other.stall_ns;
        self.tlb_misses += other.tlb_misses;
    }

    /// Total LLC misses, demand plus prefetch (the paper's `MPI` counts
    /// "either demand or prefetch" misses).
    pub fn llc_total_misses(&self) -> u64 {
        self.llc_demand_misses + self.prefetch_fills
    }
}

/// Counter-derived metrics over a measurement window, in the units the
/// paper's equations use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Effective cycles per instruction.
    pub cpi_eff: f64,
    /// LLC misses (demand + prefetch) per 1000 instructions.
    pub mpki: f64,
    /// Average demand-miss penalty in nanoseconds.
    pub miss_penalty_ns: f64,
    /// Average demand-miss penalty in core cycles.
    pub miss_penalty_cycles: f64,
    /// Writebacks as a fraction of LLC misses (+ non-temporal stores folded
    /// in, which can push it above 1.0, cf. NITS in Tab. 2).
    pub wbr: f64,
    /// Delivered memory bandwidth in GB/s over the window.
    pub bandwidth_gbps: f64,
    /// CPU utilization (busy / wall) in `[0, 1]`.
    pub cpu_utilization: f64,
    /// Retired instructions in the window (all threads).
    pub instructions: u64,
    /// `MPI × MP` in cycles — the x-axis of the Fig. 3 calibration fits.
    pub latency_per_instruction: f64,
    /// Fraction of cache accesses satisfied in L1 (Jia et al.-style
    /// per-level characterization).
    pub l1_hit_ratio: f64,
    /// Fraction of L1 misses satisfied in L2.
    pub l2_hit_ratio: f64,
    /// Fraction of L2 misses satisfied in the LLC.
    pub llc_hit_ratio: f64,
}

impl Measurement {
    /// Derives a measurement from summed core counters, memory statistics,
    /// a wall-clock window, and the core clock.
    ///
    /// Returns `None` when no instructions retired in the window.
    pub fn derive(
        cores: &CoreCounters,
        mem: &MemStats,
        wall_ns: f64,
        clock_ghz: f64,
        thread_count: u32,
    ) -> Option<Measurement> {
        if cores.instructions == 0 || wall_ns <= 0.0 {
            return None;
        }
        let cycles = cores.busy_ns * clock_ghz;
        let cpi_eff = cycles / cores.instructions as f64;
        let mpki = cores.llc_total_misses() as f64 / cores.instructions as f64 * 1000.0;
        let mp_ns = if cores.demand_miss_samples == 0 {
            0.0
        } else {
            cores.demand_miss_latency_ns / cores.demand_miss_samples as f64
        };
        let misses = cores.llc_total_misses();
        let wbr = if misses == 0 {
            0.0
        } else {
            (cores.writebacks + cores.nt_stores) as f64 / misses as f64
        };
        let bandwidth_gbps = mem.total_bytes() as f64 / wall_ns;
        let cpu_utilization = (cores.busy_ns / (wall_ns * thread_count as f64)).clamp(0.0, 1.0);
        let ratio = |hit: u64, miss: u64| {
            if hit + miss == 0 {
                0.0
            } else {
                hit as f64 / (hit + miss) as f64
            }
        };
        let below_l1 = cores.l2_hits + cores.llc_hits + cores.llc_demand_misses;
        let below_l2 = cores.llc_hits + cores.llc_demand_misses;
        Some(Measurement {
            cpi_eff,
            mpki,
            miss_penalty_ns: mp_ns,
            miss_penalty_cycles: mp_ns * clock_ghz,
            wbr,
            bandwidth_gbps,
            cpu_utilization,
            instructions: cores.instructions,
            latency_per_instruction: mpki / 1000.0 * mp_ns * clock_ghz,
            l1_hit_ratio: ratio(cores.l1_hits, below_l1),
            l2_hit_ratio: ratio(cores.l2_hits, below_l2),
            llc_hit_ratio: ratio(cores.llc_hits, cores.llc_demand_misses),
        })
    }
}

/// One row of a sampled characterization time series (Figs. 2/4/5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Window start, seconds of simulated time.
    pub time_s: f64,
    /// Derived metrics for the window.
    pub measurement: Measurement,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> CoreCounters {
        CoreCounters {
            instructions: 1_000_000,
            busy_ns: 500_000.0,
            idle_ns: 0.0,
            llc_demand_misses: 5_000,
            prefetch_fills: 600,
            writebacks: 1_800,
            nt_stores: 0,
            demand_miss_latency_ns: 5_000.0 * 90.0,
            demand_miss_samples: 5_000,
            io_bytes: 0,
            ..CoreCounters::default()
        }
    }

    #[test]
    fn derive_basic_metrics() {
        let mem = MemStats {
            reads: 5_600,
            writes: 1_800,
            read_bytes: 5_600 * 64,
            write_bytes: 1_800 * 64,
            ..MemStats::default()
        };
        let m = Measurement::derive(&counters(), &mem, 500_000.0, 2.0, 1).unwrap();
        assert!((m.cpi_eff - 1.0).abs() < 1e-12, "1e6 cycles / 1e6 instr");
        assert!((m.mpki - 5.6).abs() < 1e-12);
        assert!((m.miss_penalty_ns - 90.0).abs() < 1e-12);
        assert!((m.miss_penalty_cycles - 180.0).abs() < 1e-12);
        assert!((m.wbr - 1800.0 / 5600.0).abs() < 1e-12);
        assert!((m.bandwidth_gbps - (7_400 * 64) as f64 / 500_000.0).abs() < 1e-12);
        assert_eq!(m.cpu_utilization, 1.0);
        assert!((m.latency_per_instruction - 0.0056 * 180.0).abs() < 1e-9);
    }

    #[test]
    fn per_level_hit_ratios() {
        let mut c = counters();
        c.l1_hits = 900_000;
        c.l2_hits = 60_000;
        c.llc_hits = 20_000;
        c.llc_demand_misses = 5_000;
        let m = Measurement::derive(&c, &MemStats::default(), 500_000.0, 2.0, 1).unwrap();
        assert!((m.l1_hit_ratio - 900_000.0 / 985_000.0).abs() < 1e-12);
        assert!((m.l2_hit_ratio - 60_000.0 / 85_000.0).abs() < 1e-12);
        assert!((m.llc_hit_ratio - 20_000.0 / 25_000.0).abs() < 1e-12);
    }

    #[test]
    fn derive_handles_idle() {
        let mut c = counters();
        c.busy_ns = 350_000.0;
        c.idle_ns = 150_000.0;
        let m = Measurement::derive(&c, &MemStats::default(), 500_000.0, 2.0, 1).unwrap();
        assert!((m.cpu_utilization - 0.7).abs() < 1e-12);
    }

    #[test]
    fn derive_empty_returns_none() {
        let c = CoreCounters::default();
        assert!(Measurement::derive(&c, &MemStats::default(), 1000.0, 2.0, 1).is_none());
        assert!(Measurement::derive(&counters(), &MemStats::default(), 0.0, 2.0, 1).is_none());
    }

    #[test]
    fn nt_stores_push_wbr_above_one() {
        let mut c = counters();
        c.prefetch_fills = 0;
        c.nt_stores = 6_000;
        c.writebacks = 0;
        let m = Measurement::derive(&c, &MemStats::default(), 500_000.0, 2.0, 1).unwrap();
        assert!(m.wbr > 1.0, "WBR {} must exceed 100%", m.wbr);
    }

    #[test]
    fn delta_and_merge_roundtrip() {
        let a = counters();
        let mut b = counters();
        b.instructions += 500;
        b.busy_ns += 100.0;
        b.llc_demand_misses += 7;
        let d = b.delta(&a);
        assert_eq!(d.instructions, 500);
        assert_eq!(d.busy_ns, 100.0);
        assert_eq!(d.llc_demand_misses, 7);
        let mut acc = a;
        acc.merge(&d);
        assert_eq!(acc, b);
    }

    #[test]
    fn total_misses_counts_prefetch() {
        let c = counters();
        assert_eq!(c.llc_total_misses(), 5_600);
    }

    #[test]
    fn phase_counts_bump_and_merge() {
        let mut p = PhaseCounts::new();
        assert!(p.is_empty());
        p.bump("map");
        p.bump("map");
        p.bump("reduce");
        p.bump("map"); // label change exercises the slow path both ways
        let id = p.resolve("map");
        assert_eq!(p.count(id), 3);
        let mut total = BTreeMap::new();
        p.merge_into(&mut total);
        let mut q = PhaseCounts::new();
        q.bump("reduce");
        q.merge_into(&mut total);
        assert_eq!(total["map"], 3);
        assert_eq!(total["reduce"], 2);
        assert_eq!(total.keys().collect::<Vec<_>>(), ["map", "reduce"]);
    }

    #[test]
    fn bump_n_equals_repeated_bump() {
        let mut grouped = PhaseCounts::new();
        let mut per_op = PhaseCounts::new();
        let runs: &[(&str, u64)] = &[
            ("map", 3),
            ("reduce", 0), // zero runs must not intern the label
            ("map", 2),
            ("gc", 1),
            ("map", 4),
        ];
        for &(label, n) in runs {
            grouped.bump_n(label, n);
            for _ in 0..n {
                per_op.bump(label);
            }
        }
        let (mut a, mut b) = (BTreeMap::new(), BTreeMap::new());
        grouped.merge_into(&mut a);
        per_op.merge_into(&mut b);
        assert_eq!(a, b);
        assert!(!a.contains_key("reduce"));
        // The fast-path guess must match too: one more bump of the last
        // label takes the fast path in both tables.
        grouped.bump("map");
        per_op.bump("map");
        let id = grouped.resolve("map");
        let per_op_id = per_op.resolve("map");
        assert_eq!(grouped.count(id), per_op.count(per_op_id));
    }

    #[test]
    fn phase_resolve_is_stable() {
        let mut p = PhaseCounts::new();
        let a = p.resolve("steady");
        let b = p.resolve("gc");
        assert_ne!(a, b);
        assert_eq!(p.resolve("steady"), a);
        assert_eq!(p.count(b), 0);
    }

    #[test]
    fn no_misses_zero_wbr_and_mp() {
        let c = CoreCounters {
            instructions: 100,
            busy_ns: 100.0,
            ..CoreCounters::default()
        };
        let m = Measurement::derive(&c, &MemStats::default(), 100.0, 1.0, 1).unwrap();
        assert_eq!(m.wbr, 0.0);
        assert_eq!(m.miss_penalty_ns, 0.0);
        assert_eq!(m.mpki, 0.0);
    }
}
