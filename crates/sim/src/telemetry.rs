//! Process-wide simulator work telemetry.
//!
//! Machines flush their lifetime work counters — ops simulated, cache and
//! TLB accesses, prefetch fills — into a set of process-global atomics when
//! they are dropped. Harnesses (notably `memsense-bench sim-baseline
//! --profile`) snapshot the registry around a stage to attribute simulator
//! work to it: every machine a stage builds is also dropped inside it, so
//! per-stage deltas are exact as long as stages do not run concurrently.
//!
//! The counters only ever accumulate; readers work with snapshot deltas.

use std::sync::atomic::{AtomicU64, Ordering};

static OPS: AtomicU64 = AtomicU64::new(0);
static CACHE_ACCESSES: AtomicU64 = AtomicU64::new(0);
static TLB_ACCESSES: AtomicU64 = AtomicU64::new(0);
static PREFETCH_FILLS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the process-wide simulator work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Instructions retired across all dropped machines.
    pub ops: u64,
    /// Cache accesses (hits + misses, all levels).
    pub cache_accesses: u64,
    /// TLB translations (hits + misses; 0 when the TLB model is disabled).
    pub tlb_accesses: u64,
    /// Prefetch fills brought into the LLC.
    pub prefetch_fills: u64,
}

impl TelemetrySnapshot {
    /// Work performed since `earlier` (counters are monotone, so plain
    /// saturating subtraction is exact).
    pub fn delta_since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            ops: self.ops.saturating_sub(earlier.ops),
            cache_accesses: self.cache_accesses.saturating_sub(earlier.cache_accesses),
            tlb_accesses: self.tlb_accesses.saturating_sub(earlier.tlb_accesses),
            prefetch_fills: self.prefetch_fills.saturating_sub(earlier.prefetch_fills),
        }
    }
}

/// Reads the current counter values.
pub fn snapshot() -> TelemetrySnapshot {
    TelemetrySnapshot {
        ops: OPS.load(Ordering::Relaxed),
        cache_accesses: CACHE_ACCESSES.load(Ordering::Relaxed),
        tlb_accesses: TLB_ACCESSES.load(Ordering::Relaxed),
        prefetch_fills: PREFETCH_FILLS.load(Ordering::Relaxed),
    }
}

/// Adds one machine's lifetime work to the registry (called on drop).
pub(crate) fn record(delta: TelemetrySnapshot) {
    OPS.fetch_add(delta.ops, Ordering::Relaxed);
    CACHE_ACCESSES.fetch_add(delta.cache_accesses, Ordering::Relaxed);
    TLB_ACCESSES.fetch_add(delta.tlb_accesses, Ordering::Relaxed);
    PREFETCH_FILLS.fetch_add(delta.prefetch_fills, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_delta_subtracts() {
        let before = snapshot();
        record(TelemetrySnapshot {
            ops: 10,
            cache_accesses: 7,
            tlb_accesses: 3,
            prefetch_fills: 1,
        });
        record(TelemetrySnapshot {
            ops: 5,
            cache_accesses: 2,
            tlb_accesses: 0,
            prefetch_fills: 4,
        });
        let after = snapshot();
        let d = after.delta_since(&before);
        // Other tests may drop machines concurrently, so the delta is at
        // least what this test recorded.
        assert!(d.ops >= 15);
        assert!(d.cache_accesses >= 9);
        assert!(d.tlb_accesses >= 3);
        assert!(d.prefetch_fills >= 5);
    }

    #[test]
    fn delta_since_saturates() {
        let a = TelemetrySnapshot {
            ops: 1,
            ..TelemetrySnapshot::default()
        };
        let b = TelemetrySnapshot {
            ops: 5,
            ..TelemetrySnapshot::default()
        };
        assert_eq!(a.delta_since(&b).ops, 0);
    }
}
