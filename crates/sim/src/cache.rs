//! Set-associative caches and the private three-level hierarchy.
//!
//! Each simulated hardware thread owns an L1, an L2, and a slice of LLC
//! (the paper's machines provision 2.5 MB of LLC per core). Write-back,
//! write-allocate, LRU replacement. Dirty LLC victims become memory write
//! traffic — the writeback rate `WBR` of Eq. 4 is measured here.
//!
//! Layout: way state lives in structure-of-arrays form — one flat set-major
//! `tags` array plus parallel `stamps`/`flags` arrays — so the hit scan of a
//! set is a branchless compare sweep over a contiguous `u64` slice the
//! compiler vectorizes. Recency is tracked with per-set `u32` generation
//! stamps (LRU comparisons only ever happen within a set, so per-set clocks
//! reproduce the exact decisions of a global counter while halving the
//! per-way footprint). The hierarchy keeps a one-entry way predictor so the
//! common consecutive-hits-to-one-line case skips the set walk entirely.

use crate::config::{CacheConfig, SimConfig};
use crate::trace::{AccessKind, Op};

const VALID: u32 = 1;
const DIRTY: u32 = 2;

/// Result of a cache access at one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line was present.
    Hit,
    /// The line was absent and has been allocated; if the victim was dirty,
    /// its base address is returned for write-back to the next level.
    Miss {
        /// Dirty victim address, if any.
        writeback: Option<u64>,
    },
}

/// A single set-associative, write-back, write-allocate cache with LRU
/// replacement.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// Line-address tags, set-major: set `s` occupies `s*ways..(s+1)*ways`.
    tags: Box<[u64]>,
    /// LRU generation stamps, parallel to `tags`.
    stamps: Box<[u32]>,
    /// VALID/DIRTY state bits, parallel to `tags`.
    flags: Box<[u32]>,
    /// Per-set generation clocks backing the LRU stamps.
    clocks: Box<[u32]>,
    sets: usize,
    ways: usize,
    line_shift: u32,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds a cache from a validated [`CacheConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two sets); the
    /// owning [`SimConfig`] validates this first.
    pub fn new(config: &CacheConfig, line_size: usize) -> Self {
        let sets = config.sets(line_size);
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        SetAssocCache {
            // memsense-lint: allow(no-per-op-alloc) — one-time table build
            tags: vec![0u64; sets * config.ways].into_boxed_slice(),
            // memsense-lint: allow(no-per-op-alloc) — one-time table build
            stamps: vec![0u32; sets * config.ways].into_boxed_slice(),
            // memsense-lint: allow(no-per-op-alloc) — one-time table build
            flags: vec![0u32; sets * config.ways].into_boxed_slice(),
            // memsense-lint: allow(no-per-op-alloc) — one-time table build
            clocks: vec![0u32; sets].into_boxed_slice(),
            sets,
            ways: config.ways,
            line_shift: line_size.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    /// The line-size shift (`log2(line_size)`), for callers that need the
    /// line address of `addr`.
    pub(crate) fn line_shift(&self) -> u32 {
        self.line_shift
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr as usize) & (self.sets - 1);
        (set, line_addr)
    }

    /// Advances `set`'s generation clock and returns the new stamp.
    /// Stamps for resident lines are therefore always ≥ 1.
    fn tick(&mut self, set: usize) -> u32 {
        let clock = &mut self.clocks[set];
        if *clock == u32::MAX {
            // Wrapping would corrupt the LRU order; re-rank the set's
            // stamps to 1..=ways (preserving relative recency) and restart
            // the clock from there. Needs 4 billion accesses to one set to
            // trigger, so the cost is irrelevant.
            let base = set * self.ways;
            // memsense-lint: allow(no-per-op-alloc) — renorm fires once per 4G accesses to a set
            let mut order: Vec<usize> = (0..self.ways).collect();
            order.sort_by_key(|&i| self.stamps[base + i]);
            for (rank, &i) in order.iter().enumerate() {
                if self.flags[base + i] & VALID != 0 {
                    self.stamps[base + i] = rank as u32 + 1;
                }
            }
            self.clocks[set] = self.ways as u32;
        }
        let clock = &mut self.clocks[set];
        *clock += 1;
        *clock
    }

    /// Branchless hit scan: the flat index of the valid way holding `tag`
    /// in the set at `base`, or `usize::MAX`. Resident tags are unique per
    /// set, so accumulating the matching index over the whole contiguous
    /// tag slice (no early exit, no data-dependent branch) finds the sole
    /// hit; the compiler turns the sweep into vector compares.
    #[inline]
    fn find_way(&self, base: usize, tag: u64) -> usize {
        let mut found = usize::MAX;
        for i in base..base + self.ways {
            let hit = (self.flags[i] & VALID != 0) & (self.tags[i] == tag);
            if hit {
                found = i;
            }
        }
        found
    }

    /// Accesses `addr`; allocates on miss. `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> Lookup {
        self.access_indexed(addr, write).0
    }

    /// [`SetAssocCache::access`], additionally returning the flat slot
    /// index now holding the line (hit slot, or the victim slot the line
    /// was installed into) — the hierarchy's way predictor remembers it.
    pub(crate) fn access_indexed(&mut self, addr: u64, write: bool) -> (Lookup, u32) {
        let (set, tag) = self.index(addr);
        let stamp = self.tick(set);
        let base = set * self.ways;

        let hit = self.find_way(base, tag);
        if hit != usize::MAX {
            self.stamps[hit] = stamp;
            self.flags[hit] |= (write as u32) * DIRTY;
            self.hits += 1;
            return (Lookup::Hit, hit as u32);
        }
        self.misses += 1;
        // Choose victim branchlessly: the first invalid way (key 0), else
        // LRU (lowest stamp); strict `<` keeps the lowest index on ties.
        let mut victim_idx = base;
        let mut victim_key = u64::MAX;
        for i in base..base + self.ways {
            let valid = (self.flags[i] & VALID != 0) as u64;
            let key = valid * self.stamps[i] as u64;
            if key < victim_key {
                victim_key = key;
                victim_idx = i;
            }
        }
        let writeback = if self.flags[victim_idx] & (VALID | DIRTY) == VALID | DIRTY {
            // The stored tag is the full line address, so the victim's base
            // address is just the tag shifted back up.
            Some(self.tags[victim_idx] << self.line_shift)
        } else {
            None
        };
        self.tags[victim_idx] = tag;
        self.stamps[victim_idx] = stamp;
        self.flags[victim_idx] = VALID | ((write as u32) * DIRTY);
        (Lookup::Miss { writeback }, victim_idx as u32)
    }

    /// Way-predictor fast path: if flat slot `index` still holds the line
    /// `tag`, performs the hit (stamp/dirty/counter updates identical to
    /// [`SetAssocCache::access`]) and returns `true`. A stale prediction
    /// leaves all state untouched and returns `false`.
    pub(crate) fn hit_at(&mut self, index: u32, tag: u64, write: bool) -> bool {
        let i = index as usize;
        if self.flags[i] & VALID == 0 || self.tags[i] != tag {
            return false;
        }
        let stamp = self.tick(i / self.ways);
        self.stamps[i] = stamp;
        self.flags[i] |= (write as u32) * DIRTY;
        self.hits += 1;
        true
    }

    /// Performs a batch of `(addr, write)` accesses in order, appending one
    /// [`Lookup`] per access to `out`. State and counter evolution are
    /// identical to the same sequence of [`SetAssocCache::access`] calls;
    /// batching exists so callers pay the call/setup overhead once per
    /// block instead of once per access.
    pub fn access_block(&mut self, accesses: &[(u64, bool)], out: &mut Vec<Lookup>) {
        out.reserve(accesses.len());
        for &(addr, write) in accesses {
            out.push(self.access(addr, write));
        }
    }

    /// Checks for presence without updating replacement state.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.find_way(set * self.ways, tag) != usize::MAX
    }

    /// Marks `addr` dirty if present, returning whether it was found.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let i = self.find_way(set * self.ways, tag);
        if i != usize::MAX {
            self.flags[i] |= DIRTY;
            return true;
        }
        false
    }

    /// Hit count since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio in `[0, 1]`; 0 when never accessed.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Where in the hierarchy an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// L1 data cache.
    L1,
    /// Private L2.
    L2,
    /// LLC slice.
    Llc,
    /// Missed everywhere; goes to memory.
    Memory,
}

/// Outcome of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// Level that satisfied the access ([`HitLevel::Memory`] = LLC miss).
    pub level: HitLevel,
    /// Dirty LLC victim that must be written back to memory, if any.
    pub memory_writeback: Option<u64>,
}

/// A private L1/L2/LLC-slice stack for one hardware thread.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    llc: SetAssocCache,
    /// Load-to-use latencies (cycles) for L2/LLC hits.
    pub l2_hit_latency: u32,
    /// LLC hit latency in cycles.
    pub llc_hit_latency: u32,
    /// One-entry way predictor: the line address the last access touched
    /// and the L1 slot it lives in. Consecutive accesses to one line (the
    /// overwhelmingly common case) verify the slot and skip the set walk.
    predicted_line: u64,
    predicted_slot: u32,
}

impl CacheHierarchy {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: &SimConfig) -> Self {
        CacheHierarchy {
            l1: SetAssocCache::new(&config.l1, config.line_size),
            l2: SetAssocCache::new(&config.l2, config.line_size),
            llc: SetAssocCache::new(&config.llc, config.line_size),
            l2_hit_latency: config.l2.hit_latency,
            llc_hit_latency: config.llc.hit_latency,
            predicted_line: u64::MAX,
            predicted_slot: 0,
        }
    }

    /// Performs an access. On an LLC miss the line is allocated at every
    /// level; a dirty LLC victim is surfaced for memory write-back. Dirty
    /// L1/L2 victims are absorbed by marking the corresponding LLC line
    /// dirty (a first-order inclusive-hierarchy approximation).
    pub fn access(&mut self, addr: u64, write: bool) -> HierarchyAccess {
        if self.l1_access(addr, write) {
            // Keep the LLC's dirtiness conservative: stores that hit L1
            // will eventually be written back through L2 to the LLC.
            if write {
                self.llc.mark_dirty(addr);
            }
            return HierarchyAccess {
                level: HitLevel::L1,
                memory_writeback: None,
            };
        }
        self.access_below_l1(addr, write)
    }

    /// The L1 stage of [`CacheHierarchy::access`]: way-predictor fast path,
    /// full L1 lookup, allocate-on-miss, predictor update. Touches only the
    /// L1 and the predictor. Returns whether the access hit L1.
    #[inline]
    fn l1_access(&mut self, addr: u64, write: bool) -> bool {
        let line = addr >> self.l1.line_shift();
        // Way-predictor fast path: a repeat access to the last-touched
        // line hits L1 without walking the set (stale predictions fall
        // through to the full lookup).
        if line == self.predicted_line && self.l1.hit_at(self.predicted_slot, line, write) {
            return true;
        }
        let (l1_lookup, l1_slot) = self.l1.access_indexed(addr, write);
        // Whether it hit or was just allocated, the line now lives in
        // `l1_slot` — remember it for the next access.
        self.predicted_line = line;
        self.predicted_slot = l1_slot;
        l1_lookup == Lookup::Hit
    }

    /// The L2/LLC stage of [`CacheHierarchy::access`], taken on an L1 miss.
    pub(crate) fn access_below_l1(&mut self, addr: u64, write: bool) -> HierarchyAccess {
        match self.l2.access(addr, write) {
            Lookup::Hit => {
                if write {
                    self.llc.mark_dirty(addr);
                }
                HierarchyAccess {
                    level: HitLevel::L2,
                    memory_writeback: None,
                }
            }
            Lookup::Miss { writeback: l2_wb } => {
                if let Some(wb) = l2_wb {
                    self.llc.mark_dirty(wb);
                }
                match self.llc.access(addr, write) {
                    Lookup::Hit => HierarchyAccess {
                        level: HitLevel::Llc,
                        memory_writeback: None,
                    },
                    Lookup::Miss { writeback } => HierarchyAccess {
                        level: HitLevel::Memory,
                        memory_writeback: writeback,
                    },
                }
            }
        }
    }

    /// Marks `addr`'s LLC line dirty (the L1-hit store side effect, which
    /// the blocked engine pipeline must apply at the op's position rather
    /// than at L1-probe time).
    pub(crate) fn mark_llc_dirty(&mut self, addr: u64) {
        self.llc.mark_dirty(addr);
    }

    /// Runs the L1 stage for every non-idle, non-NT memory access in
    /// `ops`, appending one hit flag per access (in op order) to `out`.
    ///
    /// Legal to run for a whole block up front because L1 and predictor
    /// state are mutated *only* by this demand-access sequence — prefetch
    /// installs and LLC dirty marks touch L2/LLC only — so the evolution
    /// is identical to per-op interleaving. The order-sensitive L1-hit
    /// store side effect (LLC dirty mark) is deliberately *not* applied
    /// here; the engine applies it at the op's position.
    pub fn l1_probe_block(&mut self, ops: &[Op], out: &mut Vec<bool>) {
        out.clear();
        for op in ops {
            if op.idle {
                continue;
            }
            if let Some((addr, kind)) = op.access {
                if matches!(kind, AccessKind::NonTemporalStore) {
                    continue;
                }
                let write = !matches!(kind, AccessKind::Load { .. });
                out.push(self.l1_access(addr, write));
            }
        }
    }

    /// Installs a prefetched line into the LLC and L2 (modeling the L2
    /// streamer bringing data close to the core). Returns a dirty LLC
    /// victim, if any.
    pub fn install_prefetch(&mut self, addr: u64) -> Option<u64> {
        if let Lookup::Miss {
            writeback: Some(wb),
        } = self.l2.access(addr, false)
        {
            self.llc.mark_dirty(wb);
        }
        if self.llc.probe(addr) {
            return None;
        }
        match self.llc.access(addr, false) {
            Lookup::Hit => None,
            Lookup::Miss { writeback } => writeback,
        }
    }

    /// Whether `addr` is present in the LLC.
    pub fn llc_contains(&self, addr: u64) -> bool {
        self.llc.probe(addr)
    }

    /// LLC statistics `(hits, misses)`.
    pub fn llc_stats(&self) -> (u64, u64) {
        (self.llc.hits(), self.llc.misses())
    }

    /// Total lookups across every level (hits + misses, L1 + L2 + LLC).
    pub fn total_accesses(&self) -> u64 {
        [&self.l1, &self.l2, &self.llc]
            .iter()
            .map(|c| c.hits() + c.misses())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        SetAssocCache::new(
            &CacheConfig {
                capacity: 512,
                ways: 2,
                hit_latency: 4,
            },
            64,
        )
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small_cache();
        assert!(matches!(
            c.access(0x1000, false),
            Lookup::Miss { writeback: None }
        ));
        assert_eq!(c.access(0x1000, false), Lookup::Hit);
        assert_eq!(c.access(0x1010, false), Lookup::Hit, "same line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_cache();
        // Set 0 holds line addresses with (line_addr & 3) == 0: 0x000, 0x400…
        c.access(0x000, false);
        c.access(0x400, false);
        c.access(0x000, false); // touch 0x000 → 0x400 becomes LRU
        c.access(0x800, false); // evicts 0x400
        assert!(c.probe(0x000));
        assert!(!c.probe(0x400));
        assert!(c.probe(0x800));
    }

    #[test]
    fn dirty_eviction_reports_victim() {
        let mut c = small_cache();
        c.access(0x000, true);
        c.access(0x400, false);
        let r = c.access(0x800, false); // evicts dirty 0x000
        assert_eq!(
            r,
            Lookup::Miss {
                writeback: Some(0x000)
            }
        );
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = small_cache();
        c.access(0x000, false);
        c.access(0x400, false);
        assert_eq!(c.access(0x800, false), Lookup::Miss { writeback: None });
    }

    #[test]
    fn mark_dirty_and_probe() {
        let mut c = small_cache();
        assert!(!c.mark_dirty(0x123));
        c.access(0x100, false);
        assert!(c.mark_dirty(0x100));
        c.access(0x500, false);
        let r = c.access(0x900, false);
        assert_eq!(
            r,
            Lookup::Miss {
                writeback: Some(0x100)
            }
        );
    }

    #[test]
    fn hit_ratio() {
        let mut c = small_cache();
        assert_eq!(c.hit_ratio(), 0.0);
        c.access(0, false);
        c.access(0, false);
        assert_eq!(c.hit_ratio(), 0.5);
    }

    #[test]
    fn hit_at_verifies_slot_and_updates_like_access() {
        let mut c = small_cache();
        let (_, slot) = c.access_indexed(0x000, false);
        c.access(0x400, false);
        // Correct prediction: a hit, counted as such, refreshing recency.
        assert!(c.hit_at(slot, 0x000 >> 6, false));
        assert_eq!(c.hits(), 1);
        let r = c.access(0x800, false); // evicts LRU 0x400, keeps touched 0x000
        assert_eq!(r, Lookup::Miss { writeback: None });
        assert!(c.probe(0x000), "hit_at refreshed 0x000's recency");
        // Stale prediction (slot now holds another tag): no state change.
        let hits_before = c.hits();
        assert!(!c.hit_at(slot, 0xdead, false));
        assert_eq!(c.hits(), hits_before);
    }

    #[test]
    fn hierarchy_levels() {
        let cfg = SimConfig::default();
        let mut h = CacheHierarchy::new(&cfg);
        let a = h.access(0x10000, false);
        assert_eq!(a.level, HitLevel::Memory);
        let a = h.access(0x10000, false);
        assert_eq!(a.level, HitLevel::L1);
    }

    #[test]
    fn hierarchy_l2_hit_after_l1_eviction() {
        let cfg = SimConfig::default();
        let mut h = CacheHierarchy::new(&cfg);
        // Fill far beyond L1 (1 KiB) but within L2 (8 KiB).
        for i in 0..64u64 {
            h.access(i * 64, false);
        }
        // 0 was evicted from L1 (16 lines) but still in L2.
        let a = h.access(0, false);
        assert_eq!(a.level, HitLevel::L2);
    }

    #[test]
    fn hierarchy_dirty_llc_eviction_reaches_memory() {
        let cfg = SimConfig::default();
        let mut h = CacheHierarchy::new(&cfg);
        let lines = cfg.llc.capacity / cfg.line_size;
        // Write a line, then stream enough lines mapping everywhere to
        // force it out of the LLC.
        h.access(0, true);
        let mut wrote_back = false;
        for i in 1..(lines as u64 * 4) {
            let a = h.access(i * 64, false);
            if a.memory_writeback == Some(0) {
                wrote_back = true;
            }
        }
        assert!(wrote_back, "dirty line must eventually be written back");
    }

    #[test]
    fn prefetch_installs_into_llc() {
        let cfg = SimConfig::default();
        let mut h = CacheHierarchy::new(&cfg);
        assert!(!h.llc_contains(0x4000));
        h.install_prefetch(0x4000);
        assert!(h.llc_contains(0x4000));
        // Prefetching an already-present line reports no LLC victim.
        assert_eq!(h.install_prefetch(0x4000), None);
        // A prefetch-hit access hits in L2 (the streamer fills L2 too).
        let a = h.access(0x4000, false);
        assert_eq!(a.level, HitLevel::L2);
    }

    #[test]
    fn store_through_hierarchy_marks_llc_dirty() {
        let cfg = SimConfig::default();
        let mut h = CacheHierarchy::new(&cfg);
        h.access(0x2000, true); // miss, allocate dirty everywhere
        h.access(0x2000, true); // L1 hit (predictor path), still dirty in LLC
        let lines = cfg.llc.capacity / cfg.line_size;
        let mut wb = 0;
        for i in 1..(lines as u64 * 4) {
            if h.access(0x2000 + i * 64, false).memory_writeback == Some(0x2000) {
                wb += 1;
            }
        }
        assert_eq!(wb, 1, "exactly one writeback of the dirty line");
    }

    #[test]
    fn predictor_survives_unrelated_set_traffic() {
        let cfg = SimConfig::default();
        let mut h = CacheHierarchy::new(&cfg);
        h.access(0x2000, false);
        // Touch lines in other sets, then come back: still an L1 hit.
        h.access(0x2040, false);
        h.access(0x2080, false);
        let a = h.access(0x2000, false);
        assert_eq!(a.level, HitLevel::L1);
    }
}
