//! Set-associative caches and the private three-level hierarchy.
//!
//! Each simulated hardware thread owns an L1, an L2, and a slice of LLC
//! (the paper's machines provision 2.5 MB of LLC per core). Write-back,
//! write-allocate, LRU replacement. Dirty LLC victims become memory write
//! traffic — the writeback rate `WBR` of Eq. 4 is measured here.

use crate::config::{CacheConfig, SimConfig};

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// Result of a cache access at one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line was present.
    Hit,
    /// The line was absent and has been allocated; if the victim was dirty,
    /// its base address is returned for write-back to the next level.
    Miss {
        /// Dirty victim address, if any.
        writeback: Option<u64>,
    },
}

/// A single set-associative, write-back, write-allocate cache with LRU
/// replacement.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    lines: Vec<Line>,
    sets: usize,
    ways: usize,
    line_shift: u32,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds a cache from a validated [`CacheConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two sets); the
    /// owning [`SimConfig`] validates this first.
    pub fn new(config: &CacheConfig, line_size: usize) -> Self {
        let sets = config.sets(line_size);
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        SetAssocCache {
            lines: vec![Line::default(); sets * config.ways],
            sets,
            ways: config.ways,
            line_shift: line_size.trailing_zeros(),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr as usize) & (self.sets - 1);
        (set, line_addr)
    }

    /// Accesses `addr`; allocates on miss. `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> Lookup {
        self.stamp += 1;
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        let slot = &mut self.lines[base..base + self.ways];

        for line in slot.iter_mut() {
            if line.valid && line.tag == tag {
                line.last_use = self.stamp;
                line.dirty |= write;
                self.hits += 1;
                return Lookup::Hit;
            }
        }
        self.misses += 1;
        // Choose victim: an invalid way, else LRU.
        let victim_idx = slot
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.last_use } else { 0 })
            .map(|(i, _)| i)
            .expect("ways >= 1");
        let victim = slot[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            // The stored tag is the full line address, so the victim's base
            // address is just the tag shifted back up.
            Some(victim.tag << self.line_shift)
        } else {
            None
        };
        slot[victim_idx] = Line {
            tag,
            valid: true,
            dirty: write,
            last_use: self.stamp,
        };
        Lookup::Miss { writeback }
    }

    /// Checks for presence without updating replacement state.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        self.lines[base..base + self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Marks `addr` dirty if present, returning whether it was found.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        for line in &mut self.lines[base..base + self.ways] {
            if line.valid && line.tag == tag {
                line.dirty = true;
                return true;
            }
        }
        false
    }

    /// Hit count since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio in `[0, 1]`; 0 when never accessed.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Where in the hierarchy an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// L1 data cache.
    L1,
    /// Private L2.
    L2,
    /// LLC slice.
    Llc,
    /// Missed everywhere; goes to memory.
    Memory,
}

/// Outcome of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// Level that satisfied the access ([`HitLevel::Memory`] = LLC miss).
    pub level: HitLevel,
    /// Dirty LLC victim that must be written back to memory, if any.
    pub memory_writeback: Option<u64>,
}

/// A private L1/L2/LLC-slice stack for one hardware thread.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    llc: SetAssocCache,
    /// Load-to-use latencies (cycles) for L2/LLC hits.
    pub l2_hit_latency: u32,
    /// LLC hit latency in cycles.
    pub llc_hit_latency: u32,
}

impl CacheHierarchy {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: &SimConfig) -> Self {
        CacheHierarchy {
            l1: SetAssocCache::new(&config.l1, config.line_size),
            l2: SetAssocCache::new(&config.l2, config.line_size),
            llc: SetAssocCache::new(&config.llc, config.line_size),
            l2_hit_latency: config.l2.hit_latency,
            llc_hit_latency: config.llc.hit_latency,
        }
    }

    /// Performs an access. On an LLC miss the line is allocated at every
    /// level; a dirty LLC victim is surfaced for memory write-back. Dirty
    /// L1/L2 victims are absorbed by marking the corresponding LLC line
    /// dirty (a first-order inclusive-hierarchy approximation).
    pub fn access(&mut self, addr: u64, write: bool) -> HierarchyAccess {
        if self.l1.access(addr, write) == Lookup::Hit {
            // Keep the LLC's dirtiness conservative: stores that hit L1
            // will eventually be written back through L2 to the LLC.
            if write {
                self.llc.mark_dirty(addr);
            }
            return HierarchyAccess {
                level: HitLevel::L1,
                memory_writeback: None,
            };
        }
        match self.l2.access(addr, write) {
            Lookup::Hit => {
                if write {
                    self.llc.mark_dirty(addr);
                }
                HierarchyAccess {
                    level: HitLevel::L2,
                    memory_writeback: None,
                }
            }
            Lookup::Miss { writeback: l2_wb } => {
                if let Some(wb) = l2_wb {
                    self.llc.mark_dirty(wb);
                }
                match self.llc.access(addr, write) {
                    Lookup::Hit => HierarchyAccess {
                        level: HitLevel::Llc,
                        memory_writeback: None,
                    },
                    Lookup::Miss { writeback } => HierarchyAccess {
                        level: HitLevel::Memory,
                        memory_writeback: writeback,
                    },
                }
            }
        }
    }

    /// Installs a prefetched line into the LLC and L2 (modeling the L2
    /// streamer bringing data close to the core). Returns a dirty LLC
    /// victim, if any.
    pub fn install_prefetch(&mut self, addr: u64) -> Option<u64> {
        if let Lookup::Miss {
            writeback: Some(wb),
        } = self.l2.access(addr, false)
        {
            self.llc.mark_dirty(wb);
        }
        if self.llc.probe(addr) {
            return None;
        }
        match self.llc.access(addr, false) {
            Lookup::Hit => None,
            Lookup::Miss { writeback } => writeback,
        }
    }

    /// Whether `addr` is present in the LLC.
    pub fn llc_contains(&self, addr: u64) -> bool {
        self.llc.probe(addr)
    }

    /// LLC statistics `(hits, misses)`.
    pub fn llc_stats(&self) -> (u64, u64) {
        (self.llc.hits(), self.llc.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        SetAssocCache::new(
            &CacheConfig {
                capacity: 512,
                ways: 2,
                hit_latency: 4,
            },
            64,
        )
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small_cache();
        assert!(matches!(
            c.access(0x1000, false),
            Lookup::Miss { writeback: None }
        ));
        assert_eq!(c.access(0x1000, false), Lookup::Hit);
        assert_eq!(c.access(0x1010, false), Lookup::Hit, "same line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_cache();
        // Set 0 holds line addresses with (line_addr & 3) == 0: 0x000, 0x400…
        c.access(0x000, false);
        c.access(0x400, false);
        c.access(0x000, false); // touch 0x000 → 0x400 becomes LRU
        c.access(0x800, false); // evicts 0x400
        assert!(c.probe(0x000));
        assert!(!c.probe(0x400));
        assert!(c.probe(0x800));
    }

    #[test]
    fn dirty_eviction_reports_victim() {
        let mut c = small_cache();
        c.access(0x000, true);
        c.access(0x400, false);
        let r = c.access(0x800, false); // evicts dirty 0x000
        assert_eq!(
            r,
            Lookup::Miss {
                writeback: Some(0x000)
            }
        );
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = small_cache();
        c.access(0x000, false);
        c.access(0x400, false);
        assert_eq!(c.access(0x800, false), Lookup::Miss { writeback: None });
    }

    #[test]
    fn mark_dirty_and_probe() {
        let mut c = small_cache();
        assert!(!c.mark_dirty(0x123));
        c.access(0x100, false);
        assert!(c.mark_dirty(0x100));
        c.access(0x500, false);
        let r = c.access(0x900, false);
        assert_eq!(
            r,
            Lookup::Miss {
                writeback: Some(0x100)
            }
        );
    }

    #[test]
    fn hit_ratio() {
        let mut c = small_cache();
        assert_eq!(c.hit_ratio(), 0.0);
        c.access(0, false);
        c.access(0, false);
        assert_eq!(c.hit_ratio(), 0.5);
    }

    #[test]
    fn hierarchy_levels() {
        let cfg = SimConfig::default();
        let mut h = CacheHierarchy::new(&cfg);
        let a = h.access(0x10000, false);
        assert_eq!(a.level, HitLevel::Memory);
        let a = h.access(0x10000, false);
        assert_eq!(a.level, HitLevel::L1);
    }

    #[test]
    fn hierarchy_l2_hit_after_l1_eviction() {
        let cfg = SimConfig::default();
        let mut h = CacheHierarchy::new(&cfg);
        // Fill far beyond L1 (1 KiB) but within L2 (8 KiB).
        for i in 0..64u64 {
            h.access(i * 64, false);
        }
        // 0 was evicted from L1 (16 lines) but still in L2.
        let a = h.access(0, false);
        assert_eq!(a.level, HitLevel::L2);
    }

    #[test]
    fn hierarchy_dirty_llc_eviction_reaches_memory() {
        let cfg = SimConfig::default();
        let mut h = CacheHierarchy::new(&cfg);
        let lines = cfg.llc.capacity / cfg.line_size;
        // Write a line, then stream enough lines mapping everywhere to
        // force it out of the LLC.
        h.access(0, true);
        let mut wrote_back = false;
        for i in 1..(lines as u64 * 4) {
            let a = h.access(i * 64, false);
            if a.memory_writeback == Some(0) {
                wrote_back = true;
            }
        }
        assert!(wrote_back, "dirty line must eventually be written back");
    }

    #[test]
    fn prefetch_installs_into_llc() {
        let cfg = SimConfig::default();
        let mut h = CacheHierarchy::new(&cfg);
        assert!(!h.llc_contains(0x4000));
        h.install_prefetch(0x4000);
        assert!(h.llc_contains(0x4000));
        // Prefetching an already-present line reports no LLC victim.
        assert_eq!(h.install_prefetch(0x4000), None);
        // A prefetch-hit access hits in L2 (the streamer fills L2 too).
        let a = h.access(0x4000, false);
        assert_eq!(a.level, HitLevel::L2);
    }

    #[test]
    fn store_through_hierarchy_marks_llc_dirty() {
        let cfg = SimConfig::default();
        let mut h = CacheHierarchy::new(&cfg);
        h.access(0x2000, true); // miss, allocate dirty everywhere
        h.access(0x2000, true); // L1 hit, still dirty in LLC
        let lines = cfg.llc.capacity / cfg.line_size;
        let mut wb = 0;
        for i in 1..(lines as u64 * 4) {
            if h.access(0x2000 + i * 64, false).memory_writeback == Some(0x2000) {
                wb += 1;
            }
        }
        assert_eq!(wb, 1, "exactly one writeback of the dirty line");
    }
}
