//! The instruction-stream abstraction between workloads and the engine.
//!
//! A workload is an infinite generator of [`Op`]s — retired instructions with
//! optional memory or I/O side effects. The engine pulls one op at a time per
//! hardware thread; phase labels let samplers attribute counters to workload
//! phases (paper Sec. IV.D).

/// Kind of memory access an instruction performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load. `dependent` loads cannot issue until every older outstanding
    /// miss has completed (pointer chasing); independent loads overlap.
    Load {
        /// Whether the load serializes behind outstanding misses.
        dependent: bool,
    },
    /// A store (write-allocate, written back on eviction).
    Store,
    /// A non-temporal store: bypasses the cache hierarchy and writes straight
    /// to memory (the NITS workload's >100% writeback rate, paper Tab. 2).
    NonTemporalStore,
}

/// One retired instruction — or, when `idle` is set, a halted interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Op {
    /// Extra execution cycles this instruction costs beyond the pipelined
    /// `1 / issue_width` (data dependencies, long-latency ALU ops, …).
    /// This is what gives each workload its distinct `CPI_cache`.
    /// For idle ops, this is the halted duration in cycles.
    pub extra_cycles: u32,
    /// Optional memory access: byte address and kind.
    pub access: Option<(u64, AccessKind)>,
    /// When true, the op represents halted time: the thread is idle for
    /// `extra_cycles` and *no instruction retires*. Used to model the
    /// sub-100% CPU utilization of Spark or web caching (paper Figs. 2/4)
    /// without diluting CPI — the paper notes halted idle "does not include
    /// spinning … and thus the CPI is not diluted" (Sec. V.J).
    pub idle: bool,
}

impl Op {
    /// A plain single-slot compute instruction.
    pub fn compute() -> Self {
        Op {
            extra_cycles: 0,
            access: None,
            idle: false,
        }
    }

    /// A compute instruction with extra latency cycles.
    pub fn compute_heavy(extra_cycles: u32) -> Self {
        Op {
            extra_cycles,
            access: None,
            idle: false,
        }
    }

    /// A halted interval of `cycles` core cycles (no instruction retires).
    pub fn idle(cycles: u32) -> Self {
        Op {
            extra_cycles: cycles,
            access: None,
            idle: true,
        }
    }

    /// An independent (overlappable) load.
    pub fn load(addr: u64) -> Self {
        Op {
            extra_cycles: 0,
            access: Some((addr, AccessKind::Load { dependent: false })),
            idle: false,
        }
    }

    /// A dependent load: serializes behind all outstanding misses.
    pub fn dependent_load(addr: u64) -> Self {
        Op {
            extra_cycles: 0,
            access: Some((addr, AccessKind::Load { dependent: true })),
            idle: false,
        }
    }

    /// A cacheable store.
    pub fn store(addr: u64) -> Self {
        Op {
            extra_cycles: 0,
            access: Some((addr, AccessKind::Store)),
            idle: false,
        }
    }

    /// A non-temporal store.
    pub fn nt_store(addr: u64) -> Self {
        Op {
            extra_cycles: 0,
            access: Some((addr, AccessKind::NonTemporalStore)),
            idle: false,
        }
    }

    /// Attaches extra compute cycles to any op.
    pub fn with_extra_cycles(mut self, extra: u32) -> Self {
        self.extra_cycles = extra;
        self
    }
}

/// An infinite instruction stream bound to one hardware thread.
///
/// Implementors are the workload generators in `memsense-workloads`; the
/// engine never stores ops, it pulls them one at a time.
pub trait InstructionStream {
    /// Produces the next retired instruction.
    fn next_op(&mut self) -> Op;

    /// A short label for the currently executing phase ("scan", "probe",
    /// "gc", …). Used by samplers; defaults to `"steady"`.
    fn phase(&self) -> &str {
        "steady"
    }

    /// I/O bytes of DMA traffic this thread's device activity should inject
    /// per retired instruction (`IOPI × IOSZ` from Eq. 4). Zero by default.
    fn io_bytes_per_instruction(&self) -> f64 {
        0.0
    }
}

/// A boxed stream, the form the engine consumes.
pub type BoxedStream = Box<dyn InstructionStream>;

/// A trivial stream for tests and micro-benchmarks: cycles through a fixed
/// pattern of ops.
///
/// The op buffer is immutable and `Arc`-shared: cloning the stream (one per
/// hardware thread) shares the pattern and gives each clone its own cursor.
#[derive(Debug, Clone)]
pub struct PatternStream {
    ops: std::sync::Arc<[Op]>,
    next: usize,
    io_rate: f64,
}

impl PatternStream {
    /// Creates a stream cycling through `ops` forever.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(ops: Vec<Op>) -> Self {
        assert!(!ops.is_empty(), "pattern must not be empty");
        PatternStream {
            ops: ops.into(),
            next: 0,
            io_rate: 0.0,
        }
    }

    /// Sets the per-instruction I/O byte rate.
    pub fn with_io_rate(mut self, bytes_per_instr: f64) -> Self {
        self.io_rate = bytes_per_instr;
        self
    }
}

impl InstructionStream for PatternStream {
    fn next_op(&mut self) -> Op {
        let op = self.ops[self.next];
        self.next = (self.next + 1) % self.ops.len();
        op
    }

    fn io_bytes_per_instruction(&self) -> f64 {
        self.io_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_op() {
        let op = Op::idle(100);
        assert!(op.idle);
        assert_eq!(op.extra_cycles, 100);
        assert_eq!(op.access, None);
    }

    #[test]
    fn with_extra_cycles_builder() {
        let op = Op::load(64).with_extra_cycles(5);
        assert_eq!(op.extra_cycles, 5);
        assert!(op.access.is_some());
    }

    #[test]
    fn constructors_set_kinds() {
        assert_eq!(Op::compute().access, None);
        assert_eq!(Op::compute_heavy(3).extra_cycles, 3);
        assert!(matches!(
            Op::load(64).access,
            Some((64, AccessKind::Load { dependent: false }))
        ));
        assert!(matches!(
            Op::dependent_load(128).access,
            Some((128, AccessKind::Load { dependent: true }))
        ));
        assert!(matches!(Op::store(0).access, Some((0, AccessKind::Store))));
        assert!(matches!(
            Op::nt_store(0).access,
            Some((0, AccessKind::NonTemporalStore))
        ));
    }

    #[test]
    fn pattern_cycles() {
        let mut s = PatternStream::new(vec![Op::compute(), Op::load(64)]);
        assert_eq!(s.next_op(), Op::compute());
        assert_eq!(s.next_op(), Op::load(64));
        assert_eq!(s.next_op(), Op::compute());
        assert_eq!(s.phase(), "steady");
        assert_eq!(s.io_bytes_per_instruction(), 0.0);
    }

    #[test]
    fn pattern_io_rate() {
        let s = PatternStream::new(vec![Op::compute()]).with_io_rate(0.5);
        assert_eq!(s.io_bytes_per_instruction(), 0.5);
    }

    #[test]
    #[should_panic(expected = "pattern must not be empty")]
    fn empty_pattern_panics() {
        let _ = PatternStream::new(vec![]);
    }
}
