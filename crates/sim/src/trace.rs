//! The instruction-stream abstraction between workloads and the engine.
//!
//! A workload is an infinite generator of [`Op`]s — retired instructions with
//! optional memory or I/O side effects. The engine pulls one op at a time per
//! hardware thread; phase labels let samplers attribute counters to workload
//! phases (paper Sec. IV.D).

/// Kind of memory access an instruction performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load. `dependent` loads cannot issue until every older outstanding
    /// miss has completed (pointer chasing); independent loads overlap.
    Load {
        /// Whether the load serializes behind outstanding misses.
        dependent: bool,
    },
    /// A store (write-allocate, written back on eviction).
    Store,
    /// A non-temporal store: bypasses the cache hierarchy and writes straight
    /// to memory (the NITS workload's >100% writeback rate, paper Tab. 2).
    NonTemporalStore,
}

/// One retired instruction — or, when `idle` is set, a halted interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Op {
    /// Extra execution cycles this instruction costs beyond the pipelined
    /// `1 / issue_width` (data dependencies, long-latency ALU ops, …).
    /// This is what gives each workload its distinct `CPI_cache`.
    /// For idle ops, this is the halted duration in cycles.
    pub extra_cycles: u32,
    /// Optional memory access: byte address and kind.
    pub access: Option<(u64, AccessKind)>,
    /// When true, the op represents halted time: the thread is idle for
    /// `extra_cycles` and *no instruction retires*. Used to model the
    /// sub-100% CPU utilization of Spark or web caching (paper Figs. 2/4)
    /// without diluting CPI — the paper notes halted idle "does not include
    /// spinning … and thus the CPI is not diluted" (Sec. V.J).
    pub idle: bool,
}

impl Op {
    /// A plain single-slot compute instruction.
    pub fn compute() -> Self {
        Op {
            extra_cycles: 0,
            access: None,
            idle: false,
        }
    }

    /// A compute instruction with extra latency cycles.
    pub fn compute_heavy(extra_cycles: u32) -> Self {
        Op {
            extra_cycles,
            access: None,
            idle: false,
        }
    }

    /// A halted interval of `cycles` core cycles (no instruction retires).
    pub fn idle(cycles: u32) -> Self {
        Op {
            extra_cycles: cycles,
            access: None,
            idle: true,
        }
    }

    /// An independent (overlappable) load.
    pub fn load(addr: u64) -> Self {
        Op {
            extra_cycles: 0,
            access: Some((addr, AccessKind::Load { dependent: false })),
            idle: false,
        }
    }

    /// A dependent load: serializes behind all outstanding misses.
    pub fn dependent_load(addr: u64) -> Self {
        Op {
            extra_cycles: 0,
            access: Some((addr, AccessKind::Load { dependent: true })),
            idle: false,
        }
    }

    /// A cacheable store.
    pub fn store(addr: u64) -> Self {
        Op {
            extra_cycles: 0,
            access: Some((addr, AccessKind::Store)),
            idle: false,
        }
    }

    /// A non-temporal store.
    pub fn nt_store(addr: u64) -> Self {
        Op {
            extra_cycles: 0,
            access: Some((addr, AccessKind::NonTemporalStore)),
            idle: false,
        }
    }

    /// Attaches extra compute cycles to any op.
    pub fn with_extra_cycles(mut self, extra: u32) -> Self {
        self.extra_cycles = extra;
        self
    }
}

/// A reusable block of ops plus run-length-encoded phase/I/O sidecars — the
/// unit the engine pulls per scheduling quantum instead of one op at a time.
///
/// Phase labels and I/O rates change rarely (phase boundaries, refills), so
/// both are stored as `(op count, value)` runs covering the block in order.
/// Labels are interned into a grow-only pool so steady-state filling
/// allocates nothing.
#[derive(Debug, Default)]
pub struct OpBlock {
    /// Ops in stream order. Filled by [`InstructionStream::fill_block`].
    pub ops: Vec<Op>,
    /// Grow-only label intern pool (stable indices).
    labels: Vec<String>,
    /// `(op count, label pool index)` runs covering `ops` in order.
    phase_runs: Vec<(u32, u32)>,
    /// `(op count, io bytes per instruction)` runs covering `ops` in order.
    io_runs: Vec<(u32, f64)>,
}

impl OpBlock {
    /// Creates an empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears ops and runs; the label pool is retained so refills stay
    /// allocation-free.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.phase_runs.clear();
        self.io_runs.clear();
    }

    /// Appends one op.
    #[inline]
    pub fn push_op(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Attributes the most recently pushed op to `label`.
    #[inline]
    pub fn note_phase(&mut self, label: &str) {
        if let Some((n, idx)) = self.phase_runs.last_mut() {
            if self.labels[*idx as usize] == label {
                *n += 1;
                return;
            }
        }
        self.start_phase_run(label, 1);
    }

    /// Attributes the `n` most recently pushed ops to `label`.
    pub fn note_phase_n(&mut self, label: &str, n: u32) {
        if n == 0 {
            return;
        }
        if let Some((run_n, idx)) = self.phase_runs.last_mut() {
            if self.labels[*idx as usize] == label {
                *run_n += n;
                return;
            }
        }
        self.start_phase_run(label, n);
    }

    fn start_phase_run(&mut self, label: &str, n: u32) {
        let idx = match self.labels.iter().position(|l| l == label) {
            Some(i) => i as u32,
            None => {
                self.labels.push(label.to_string());
                self.labels.len() as u32 - 1
            }
        };
        self.phase_runs.push((n, idx));
    }

    /// Records the I/O rate in effect for the most recently pushed op.
    #[inline]
    pub fn note_io(&mut self, rate: f64) {
        self.note_io_n(rate, 1);
    }

    /// Records the I/O rate in effect for the `n` most recently pushed ops.
    pub fn note_io_n(&mut self, rate: f64, n: u32) {
        if n == 0 {
            return;
        }
        if let Some((run_n, run_rate)) = self.io_runs.last_mut() {
            if run_rate.to_bits() == rate.to_bits() {
                *run_n += n;
                return;
            }
        }
        self.io_runs.push((n, rate));
    }

    /// Number of phase runs covering the block.
    pub fn phase_run_count(&self) -> usize {
        self.phase_runs.len()
    }

    /// The `i`-th phase run as `(op count, label)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn phase_run(&self, i: usize) -> (u32, &str) {
        let (n, idx) = self.phase_runs[i];
        (n, &self.labels[idx as usize])
    }

    /// The `i`-th I/O run as `(op count, rate)`, or `(0, 0.0)` past the end
    /// (so cursor arithmetic needs no bounds branches).
    pub fn io_run(&self, i: usize) -> (u32, f64) {
        self.io_runs.get(i).copied().unwrap_or((0, 0.0))
    }
}

/// An infinite instruction stream bound to one hardware thread.
///
/// Implementors are the workload generators in `memsense-workloads`; the
/// engine pulls a block of ops per scheduling quantum via
/// [`InstructionStream::fill_block`] (one dynamic dispatch per block).
pub trait InstructionStream {
    /// Produces the next retired instruction.
    fn next_op(&mut self) -> Op;

    /// A short label for the currently executing phase ("scan", "probe",
    /// "gc", …). Used by samplers; defaults to `"steady"`.
    fn phase(&self) -> &str {
        "steady"
    }

    /// I/O bytes of DMA traffic this thread's device activity should inject
    /// per retired instruction (`IOPI × IOSZ` from Eq. 4). Zero by default.
    fn io_bytes_per_instruction(&self) -> f64 {
        0.0
    }

    /// Fills `block` with the next `n` ops plus their phase/I/O sidecars.
    ///
    /// Must be equivalent to `n` successive `next_op` calls, where each op
    /// is annotated with the `phase()` and `io_bytes_per_instruction()`
    /// values observable immediately after that `next_op` returned. The
    /// default body does exactly that; since default methods are
    /// monomorphized per implementor, the inner calls are static — one
    /// dynamic dispatch per block instead of three per op. Generators with
    /// internal op buffers override this to drain them in bulk.
    fn fill_block(&mut self, block: &mut OpBlock, n: usize) {
        block.clear();
        for _ in 0..n {
            let op = self.next_op();
            block.push_op(op);
            block.note_phase(self.phase());
            block.note_io(self.io_bytes_per_instruction());
        }
    }
}

/// A boxed stream, the form the engine consumes.
pub type BoxedStream = Box<dyn InstructionStream>;

/// A trivial stream for tests and micro-benchmarks: cycles through a fixed
/// pattern of ops.
///
/// The op buffer is immutable and `Arc`-shared: cloning the stream (one per
/// hardware thread) shares the pattern and gives each clone its own cursor.
#[derive(Debug, Clone)]
pub struct PatternStream {
    ops: std::sync::Arc<[Op]>,
    next: usize,
    io_rate: f64,
}

impl PatternStream {
    /// Creates a stream cycling through `ops` forever.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(ops: Vec<Op>) -> Self {
        assert!(!ops.is_empty(), "pattern must not be empty");
        PatternStream {
            ops: ops.into(),
            next: 0,
            io_rate: 0.0,
        }
    }

    /// Sets the per-instruction I/O byte rate.
    pub fn with_io_rate(mut self, bytes_per_instr: f64) -> Self {
        self.io_rate = bytes_per_instr;
        self
    }
}

impl InstructionStream for PatternStream {
    fn next_op(&mut self) -> Op {
        let op = self.ops[self.next];
        self.next = (self.next + 1) % self.ops.len();
        op
    }

    fn io_bytes_per_instruction(&self) -> f64 {
        self.io_rate
    }

    fn fill_block(&mut self, block: &mut OpBlock, n: usize) {
        block.clear();
        let mut filled = 0;
        while filled < n {
            let take = (n - filled).min(self.ops.len() - self.next);
            block
                .ops
                .extend_from_slice(&self.ops[self.next..self.next + take]);
            self.next = (self.next + take) % self.ops.len();
            filled += take;
        }
        block.note_phase_n("steady", n as u32);
        block.note_io_n(self.io_rate, n as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_op() {
        let op = Op::idle(100);
        assert!(op.idle);
        assert_eq!(op.extra_cycles, 100);
        assert_eq!(op.access, None);
    }

    #[test]
    fn with_extra_cycles_builder() {
        let op = Op::load(64).with_extra_cycles(5);
        assert_eq!(op.extra_cycles, 5);
        assert!(op.access.is_some());
    }

    #[test]
    fn constructors_set_kinds() {
        assert_eq!(Op::compute().access, None);
        assert_eq!(Op::compute_heavy(3).extra_cycles, 3);
        assert!(matches!(
            Op::load(64).access,
            Some((64, AccessKind::Load { dependent: false }))
        ));
        assert!(matches!(
            Op::dependent_load(128).access,
            Some((128, AccessKind::Load { dependent: true }))
        ));
        assert!(matches!(Op::store(0).access, Some((0, AccessKind::Store))));
        assert!(matches!(
            Op::nt_store(0).access,
            Some((0, AccessKind::NonTemporalStore))
        ));
    }

    #[test]
    fn pattern_cycles() {
        let mut s = PatternStream::new(vec![Op::compute(), Op::load(64)]);
        assert_eq!(s.next_op(), Op::compute());
        assert_eq!(s.next_op(), Op::load(64));
        assert_eq!(s.next_op(), Op::compute());
        assert_eq!(s.phase(), "steady");
        assert_eq!(s.io_bytes_per_instruction(), 0.0);
    }

    #[test]
    fn pattern_io_rate() {
        let s = PatternStream::new(vec![Op::compute()]).with_io_rate(0.5);
        assert_eq!(s.io_bytes_per_instruction(), 0.5);
    }

    #[test]
    #[should_panic(expected = "pattern must not be empty")]
    fn empty_pattern_panics() {
        let _ = PatternStream::new(vec![]);
    }

    #[test]
    fn op_block_runs_cover_ops() {
        let mut b = OpBlock::new();
        b.push_op(Op::compute());
        b.note_phase("map");
        b.note_io(0.0);
        b.push_op(Op::compute());
        b.note_phase("map");
        b.note_io(0.0);
        b.push_op(Op::compute());
        b.note_phase("reduce");
        b.note_io(2.0);
        assert_eq!(b.ops.len(), 3);
        assert_eq!(b.phase_run_count(), 2);
        assert_eq!(b.phase_run(0), (2, "map"));
        assert_eq!(b.phase_run(1), (1, "reduce"));
        assert_eq!(b.io_run(0), (2, 0.0));
        assert_eq!(b.io_run(1), (1, 2.0));
        assert_eq!(b.io_run(2), (0, 0.0), "past-the-end sentinel");
    }

    #[test]
    fn op_block_clear_retains_label_pool() {
        let mut b = OpBlock::new();
        b.push_op(Op::compute());
        b.note_phase("map");
        b.clear();
        assert!(b.ops.is_empty());
        assert_eq!(b.phase_run_count(), 0);
        // The pool index for "map" is stable across clears.
        b.push_op(Op::compute());
        b.note_phase_n("map", 1);
        assert_eq!(b.phase_run(0), (1, "map"));
    }

    #[test]
    fn op_block_zero_count_notes_are_ignored() {
        let mut b = OpBlock::new();
        b.note_phase_n("never", 0);
        b.note_io_n(5.0, 0);
        assert_eq!(b.phase_run_count(), 0);
        assert_eq!(b.io_run(0), (0, 0.0));
    }

    #[test]
    fn default_fill_block_matches_next_op() {
        struct Counting {
            n: u64,
        }
        impl InstructionStream for Counting {
            fn next_op(&mut self) -> Op {
                self.n += 1;
                Op::compute_heavy(self.n as u32)
            }
            fn phase(&self) -> &str {
                if self.n < 3 {
                    "warm"
                } else {
                    "hot"
                }
            }
            fn io_bytes_per_instruction(&self) -> f64 {
                self.n as f64
            }
        }
        let mut a = Counting { n: 0 };
        let mut b = Counting { n: 0 };
        let mut blk = OpBlock::new();
        a.fill_block(&mut blk, 5);
        assert_eq!(blk.ops.len(), 5);
        for (i, op) in blk.ops.iter().enumerate() {
            assert_eq!(*op, b.next_op(), "op {i}");
        }
        // Ops 1..=2 observe "warm", 3..=5 observe "hot".
        assert_eq!(blk.phase_run(0), (2, "warm"));
        assert_eq!(blk.phase_run(1), (3, "hot"));
        // Each op carries its own io rate (all distinct).
        assert_eq!(blk.io_run(0), (1, 1.0));
        assert_eq!(blk.io_run(4), (1, 5.0));
    }

    #[test]
    fn pattern_fill_block_matches_next_op() {
        let ops = vec![Op::compute(), Op::load(64), Op::store(128)];
        let mut a = PatternStream::new(ops.clone()).with_io_rate(1.5);
        let mut b = PatternStream::new(ops).with_io_rate(1.5);
        let mut blk = OpBlock::new();
        a.fill_block(&mut blk, 8); // wraps the 3-op pattern
        assert_eq!(blk.ops.len(), 8);
        for op in &blk.ops {
            assert_eq!(*op, b.next_op());
        }
        assert_eq!(a.next_op(), b.next_op(), "cursors stay in sync");
        assert_eq!(blk.phase_run(0), (8, "steady"));
        assert_eq!(blk.io_run(0), (8, 1.5));
    }
}
