//! Data-TLB model (optional fidelity feature).
//!
//! The paper cites page-table overheads for big data (Basu et al. \[11\]) as
//! related work but does not model them; the simulator offers an optional
//! DTLB so the effect can be studied: a fully-pragmatic set-associative TLB
//! whose misses cost a fixed page-walk penalty plus, optionally, memory
//! traffic. Disabled by default (`TlbConfig::disabled`) so the calibrated
//! workload parameters are unaffected unless explicitly enabled.

/// TLB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries; 0 disables the TLB entirely.
    pub entries: usize,
    /// Page size shift (12 → 4 KiB pages).
    pub page_shift: u32,
    /// Core cycles a page walk stalls the pipeline.
    pub walk_cycles: u32,
}

impl TlbConfig {
    /// No TLB modeling (the default).
    pub fn disabled() -> Self {
        TlbConfig {
            entries: 0,
            page_shift: 12,
            walk_cycles: 0,
        }
    }

    /// A Sandy-Bridge-era DTLB: 64 entries, 4 KiB pages, ~30-cycle walks
    /// (scaled to the simulator's reduced cache latencies).
    pub fn dtlb_64() -> Self {
        TlbConfig {
            entries: 64,
            page_shift: 12,
            walk_cycles: 30,
        }
    }

    /// Whether the TLB is modeled at all.
    pub fn enabled(&self) -> bool {
        self.entries > 0
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// A fully-associative TLB with LRU replacement (small enough that full
/// associativity is both accurate and fast).
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    entries: Vec<(u64, u64)>, // (page, last_use)
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB from its configuration.
    pub fn new(config: TlbConfig) -> Self {
        Tlb {
            config,
            entries: Vec::with_capacity(config.entries),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates `addr`; returns `true` on a hit, `false` on a miss (the
    /// caller charges [`TlbConfig::walk_cycles`]). A disabled TLB always
    /// hits.
    pub fn access(&mut self, addr: u64) -> bool {
        if !self.config.enabled() {
            return true;
        }
        self.clock += 1;
        let page = addr >> self.config.page_shift;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.config.entries {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((page, self.clock));
        false
    }

    /// Configured walk penalty in cycles.
    pub fn walk_cycles(&self) -> u32 {
        self.config.walk_cycles
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Miss ratio in `[0, 1]`; 0 when never accessed or disabled.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tlb_always_hits() {
        let mut t = Tlb::new(TlbConfig::disabled());
        for i in 0..100u64 {
            assert!(t.access(i * 4096));
        }
        assert_eq!(t.stats(), (0, 0));
        assert_eq!(t.miss_ratio(), 0.0);
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut t = Tlb::new(TlbConfig::dtlb_64());
        assert!(!t.access(0x1000));
        assert!(t.access(0x1000));
        assert!(t.access(0x1fff), "same page");
        assert!(!t.access(0x2000), "next page");
        assert_eq!(t.stats(), (2, 2));
    }

    #[test]
    fn lru_eviction_beyond_capacity() {
        let cfg = TlbConfig {
            entries: 4,
            page_shift: 12,
            walk_cycles: 30,
        };
        let mut t = Tlb::new(cfg);
        for p in 0..4u64 {
            t.access(p << 12);
        }
        t.access(0); // refresh page 0
        t.access(4 << 12); // evicts page 1 (LRU)
        assert!(t.access(0), "page 0 retained");
        assert!(!t.access(1 << 12), "page 1 evicted");
    }

    #[test]
    fn working_set_within_capacity_never_misses_again() {
        let mut t = Tlb::new(TlbConfig::dtlb_64());
        for round in 0..3 {
            for p in 0..64u64 {
                let hit = t.access(p << 12);
                if round > 0 {
                    assert!(hit, "round {round} page {p}");
                }
            }
        }
        assert_eq!(t.stats().1, 64, "only compulsory misses");
    }

    #[test]
    fn miss_ratio_of_streaming() {
        let mut t = Tlb::new(TlbConfig::dtlb_64());
        // Touch 1000 distinct pages once each: everything misses.
        for p in 0..1000u64 {
            t.access(p << 12);
        }
        assert!((t.miss_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(t.walk_cycles(), 30);
    }
}
