//! Data-TLB model (optional fidelity feature).
//!
//! The paper cites page-table overheads for big data (Basu et al. \[11\]) as
//! related work but does not model them; the simulator offers an optional
//! DTLB so the effect can be studied: a fully-pragmatic set-associative TLB
//! whose misses cost a fixed page-walk penalty plus, optionally, memory
//! traffic. Disabled by default (`TlbConfig::disabled`) so the calibrated
//! workload parameters are unaffected unless explicitly enabled.

/// TLB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries; 0 disables the TLB entirely.
    pub entries: usize,
    /// Page size shift (12 → 4 KiB pages).
    pub page_shift: u32,
    /// Core cycles a page walk stalls the pipeline.
    pub walk_cycles: u32,
}

impl TlbConfig {
    /// No TLB modeling (the default).
    pub fn disabled() -> Self {
        TlbConfig {
            entries: 0,
            page_shift: 12,
            walk_cycles: 0,
        }
    }

    /// A Sandy-Bridge-era DTLB: 64 entries, 4 KiB pages, ~30-cycle walks
    /// (scaled to the simulator's reduced cache latencies).
    pub fn dtlb_64() -> Self {
        TlbConfig {
            entries: 64,
            page_shift: 12,
            walk_cycles: 30,
        }
    }

    /// Whether the TLB is modeled at all.
    pub fn enabled(&self) -> bool {
        self.entries > 0
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// A fully-associative TLB with LRU replacement (small enough that full
/// associativity is both accurate and fast).
///
/// Pages and `u32` LRU generation stamps live in parallel arrays, and the
/// last-hit index is remembered so the common stay-on-one-page case resolves
/// with a single comparison. Stamps are unique within the TLB (each enabled
/// access ticks the clock exactly once), so LRU choice is unambiguous; the
/// clock renormalizes near `u32::MAX` preserving relative recency.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    pages: Vec<u64>,
    stamps: Vec<u32>,
    clock: u32,
    /// Index of the most recent hit — checked first on the next access.
    last_hit: usize,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB from its configuration.
    pub fn new(config: TlbConfig) -> Self {
        Tlb {
            config,
            pages: Vec::with_capacity(config.entries),
            stamps: Vec::with_capacity(config.entries),
            clock: 0,
            last_hit: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Advances the generation clock, renormalizing stamps before a wrap
    /// would corrupt the LRU order (stamps re-ranked to 1..=len, oldest
    /// first).
    fn tick(&mut self) -> u32 {
        if self.clock == u32::MAX {
            let mut order: Vec<usize> = (0..self.stamps.len()).collect();
            order.sort_by_key(|&i| self.stamps[i]);
            for (rank, &i) in order.iter().enumerate() {
                self.stamps[i] = rank as u32 + 1;
            }
            self.clock = self.stamps.len() as u32;
        }
        self.clock += 1;
        self.clock
    }

    /// Whether this TLB is modeled at all (zero entries = disabled).
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// Translates `addr`; returns `true` on a hit, `false` on a miss (the
    /// caller charges [`TlbConfig::walk_cycles`]). A disabled TLB always
    /// hits.
    pub fn access(&mut self, addr: u64) -> bool {
        if !self.config.enabled() {
            return true;
        }
        let stamp = self.tick();
        let page = addr >> self.config.page_shift;
        // Fast path: repeat access to the last-hit page.
        if let Some(&p) = self.pages.get(self.last_hit) {
            if p == page {
                self.stamps[self.last_hit] = stamp;
                self.hits += 1;
                return true;
            }
        }
        // Branchless scan of the page array: resident pages are unique, so
        // accumulating the matching index finds the (sole) hit without a
        // data-dependent branch per entry — the compiler vectorizes the
        // whole-array compare.
        let mut found = usize::MAX;
        for (i, &p) in self.pages.iter().enumerate() {
            if p == page {
                found = i;
            }
        }
        if found != usize::MAX {
            self.stamps[found] = stamp;
            self.last_hit = found;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.pages.len() == self.config.entries {
            // Stamps are unique, so the minimum identifies the LRU entry.
            let mut lru = 0;
            for (i, &s) in self.stamps.iter().enumerate() {
                if s < self.stamps[lru] {
                    lru = i;
                }
            }
            self.pages.swap_remove(lru);
            self.stamps.swap_remove(lru);
        }
        self.pages.push(page);
        self.stamps.push(stamp);
        false
    }

    /// Translates every non-idle memory access in `ops`, appending one
    /// hit/miss flag per access (in op order) to `out`.
    ///
    /// The TLB's state depends only on the address sequence — nothing else
    /// in the engine mutates it — so translating a whole block up front
    /// produces exactly the state and outcomes of per-op translation
    /// interleaved with execution.
    pub fn access_block(&mut self, ops: &[crate::trace::Op], out: &mut Vec<bool>) {
        out.clear();
        for op in ops {
            if op.idle {
                continue;
            }
            if let Some((addr, _)) = op.access {
                out.push(self.access(addr));
            }
        }
    }

    /// Configured walk penalty in cycles.
    pub fn walk_cycles(&self) -> u32 {
        self.config.walk_cycles
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Miss ratio in `[0, 1]`; 0 when never accessed or disabled.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tlb_always_hits() {
        let mut t = Tlb::new(TlbConfig::disabled());
        for i in 0..100u64 {
            assert!(t.access(i * 4096));
        }
        assert_eq!(t.stats(), (0, 0));
        assert_eq!(t.miss_ratio(), 0.0);
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut t = Tlb::new(TlbConfig::dtlb_64());
        assert!(!t.access(0x1000));
        assert!(t.access(0x1000));
        assert!(t.access(0x1fff), "same page");
        assert!(!t.access(0x2000), "next page");
        assert_eq!(t.stats(), (2, 2));
    }

    #[test]
    fn lru_eviction_beyond_capacity() {
        let cfg = TlbConfig {
            entries: 4,
            page_shift: 12,
            walk_cycles: 30,
        };
        let mut t = Tlb::new(cfg);
        for p in 0..4u64 {
            t.access(p << 12);
        }
        t.access(0); // refresh page 0
        t.access(4 << 12); // evicts page 1 (LRU)
        assert!(t.access(0), "page 0 retained");
        assert!(!t.access(1 << 12), "page 1 evicted");
    }

    #[test]
    fn working_set_within_capacity_never_misses_again() {
        let mut t = Tlb::new(TlbConfig::dtlb_64());
        for round in 0..3 {
            for p in 0..64u64 {
                let hit = t.access(p << 12);
                if round > 0 {
                    assert!(hit, "round {round} page {p}");
                }
            }
        }
        assert_eq!(t.stats().1, 64, "only compulsory misses");
    }

    #[test]
    fn miss_ratio_of_streaming() {
        let mut t = Tlb::new(TlbConfig::dtlb_64());
        // Touch 1000 distinct pages once each: everything misses.
        for p in 0..1000u64 {
            t.access(p << 12);
        }
        assert!((t.miss_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(t.walk_cycles(), 30);
    }

    #[test]
    fn access_block_equals_per_op_access() {
        use crate::trace::Op;
        let ops: Vec<Op> = (0..200u64)
            .map(|i| match i % 5 {
                0 => Op::load((i * 911) << 12),
                1 => Op::store((i % 7) << 12),
                2 => Op::compute(),
                3 => Op::nt_store((i * 13) << 12),
                _ => Op::idle(4),
            })
            .collect();
        let mut blocked = Tlb::new(TlbConfig::dtlb_64());
        let mut scalar = Tlb::new(TlbConfig::dtlb_64());
        let mut out = Vec::new();
        blocked.access_block(&ops, &mut out);
        let mut expect = Vec::new();
        for op in &ops {
            if op.idle {
                continue;
            }
            if let Some((addr, _)) = op.access {
                expect.push(scalar.access(addr));
            }
        }
        assert_eq!(out, expect);
        assert_eq!(blocked.stats(), scalar.stats());
        assert!(blocked.enabled());
        assert!(!Tlb::new(TlbConfig::disabled()).enabled());
    }

    #[test]
    fn renormalization_preserves_lru_order() {
        let cfg = TlbConfig {
            entries: 3,
            page_shift: 12,
            walk_cycles: 30,
        };
        let mut t = Tlb::new(cfg);
        t.access(1 << 12);
        t.access(2 << 12);
        t.access(3 << 12);
        t.access(1 << 12); // recency now 2, 3, 1 (oldest first)
        t.clock = u32::MAX; // force renormalization on the next access
        t.access(4 << 12); // must evict page 2, the true LRU
        assert!(!t.access(2 << 12), "page 2 was evicted across the wrap");
    }
}
