//! Differential tests: the optimized cache/TLB/hierarchy structures against
//! naive reference implementations.
//!
//! The production [`SetAssocCache`] packs its ways into a flat set-major
//! array with per-set `u32` generation stamps, [`Tlb`] keeps parallel
//! page/stamp arrays with a last-hit fast path, and [`CacheHierarchy`] adds
//! a one-entry way predictor in front of L1. All of that is supposed to be
//! pure layout/speed: every observable decision — hit vs miss, which victim
//! is evicted, which writebacks surface, every counter — must be what the
//! obvious textbook implementation produces. These tests drive both through
//! randomized address streams and compare step by step, so any divergence
//! reports the exact operation index where the optimized structure went
//! wrong.

use memsense_sim::cache::{CacheHierarchy, HitLevel, Lookup, SetAssocCache};
use memsense_sim::config::{CacheConfig, SimConfig};
use memsense_sim::tlb::{Tlb, TlbConfig};
use memsense_sim::trace::{AccessKind, Op};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Reference cache: one Vec<Line> per set, global u64 clock, linear scans.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Default)]
struct RefLine {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

struct RefCache {
    sets: Vec<Vec<RefLine>>,
    line_shift: u32,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl RefCache {
    fn new(config: &CacheConfig, line_size: usize) -> Self {
        RefCache {
            sets: vec![vec![RefLine::default(); config.ways]; config.sets(line_size)],
            line_shift: line_size.trailing_zeros(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let tag = addr >> self.line_shift;
        ((tag as usize) & (self.sets.len() - 1), tag)
    }

    /// Textbook LRU access: scan for the tag; on miss evict the first way
    /// holding the minimal key, where invalid ways rank below every valid
    /// one (resident stamps are always positive).
    fn access(&mut self, addr: u64, write: bool) -> Lookup {
        let (set, tag) = self.locate(addr);
        self.clock += 1;
        let stamp = self.clock;
        let ways = &mut self.sets[set];
        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.stamp = stamp;
            way.dirty |= write;
            self.hits += 1;
            return Lookup::Hit;
        }
        self.misses += 1;
        let mut victim = 0;
        for (i, w) in ways.iter().enumerate() {
            let key = |l: &RefLine| if l.valid { l.stamp } else { 0 };
            if key(w) < key(&ways[victim]) {
                victim = i;
            }
        }
        let evicted = ways[victim];
        ways[victim] = RefLine {
            tag,
            valid: true,
            dirty: write,
            stamp,
        };
        Lookup::Miss {
            writeback: (evicted.valid && evicted.dirty).then(|| evicted.tag << self.line_shift),
        }
    }

    fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        self.sets[set].iter().any(|w| w.valid && w.tag == tag)
    }

    fn mark_dirty(&mut self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        match self.sets[set].iter_mut().find(|w| w.valid && w.tag == tag) {
            Some(w) => {
                w.dirty = true;
                true
            }
            None => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Reference TLB: Vec of (page, stamp), global u64 clock.
// ---------------------------------------------------------------------------

struct RefTlb {
    config: TlbConfig,
    entries: Vec<(u64, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl RefTlb {
    fn new(config: TlbConfig) -> Self {
        RefTlb {
            config,
            entries: Vec::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        if !self.config.enabled() {
            return true;
        }
        self.clock += 1;
        let page = addr >> self.config.page_shift;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.config.entries {
            // Stamps are unique, so the minimum is the unambiguous LRU
            // entry regardless of how either implementation stores order.
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.remove(lru);
        }
        self.entries.push((page, self.clock));
        false
    }
}

// ---------------------------------------------------------------------------
// Reference hierarchy: three RefCaches wired exactly like CacheHierarchy
// (sans way predictor — the predictor must be behaviorally invisible).
// ---------------------------------------------------------------------------

struct RefHierarchy {
    l1: RefCache,
    l2: RefCache,
    llc: RefCache,
}

impl RefHierarchy {
    fn new(config: &SimConfig) -> Self {
        RefHierarchy {
            l1: RefCache::new(&config.l1, config.line_size),
            l2: RefCache::new(&config.l2, config.line_size),
            llc: RefCache::new(&config.llc, config.line_size),
        }
    }

    fn access(&mut self, addr: u64, write: bool) -> (HitLevel, Option<u64>) {
        if self.l1.access(addr, write) == Lookup::Hit {
            if write {
                self.llc.mark_dirty(addr);
            }
            return (HitLevel::L1, None);
        }
        match self.l2.access(addr, write) {
            Lookup::Hit => {
                if write {
                    self.llc.mark_dirty(addr);
                }
                (HitLevel::L2, None)
            }
            Lookup::Miss { writeback } => {
                if let Some(wb) = writeback {
                    self.llc.mark_dirty(wb);
                }
                match self.llc.access(addr, write) {
                    Lookup::Hit => (HitLevel::Llc, None),
                    Lookup::Miss { writeback } => (HitLevel::Memory, writeback),
                }
            }
        }
    }

    fn install_prefetch(&mut self, addr: u64) -> Option<u64> {
        if let Lookup::Miss {
            writeback: Some(wb),
        } = self.l2.access(addr, false)
        {
            self.llc.mark_dirty(wb);
        }
        if self.llc.probe(addr) {
            return None;
        }
        match self.llc.access(addr, false) {
            Lookup::Hit => None,
            Lookup::Miss { writeback } => writeback,
        }
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

/// A small cache so random streams actually conflict: 4 KiB, 4-way,
/// 64 B lines → 16 sets.
fn small_cache_config() -> CacheConfig {
    CacheConfig {
        capacity: 4096,
        ways: 4,
        hit_latency: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cache_matches_reference(
        ops in collection::vec((0u64..(1 << 14), any::<bool>()), 1..600),
    ) {
        let config = small_cache_config();
        let mut fast = SetAssocCache::new(&config, 64);
        let mut reference = RefCache::new(&config, 64);
        for (i, &(addr, write)) in ops.iter().enumerate() {
            let got = fast.access(addr, write);
            let want = reference.access(addr, write);
            prop_assert_eq!(
                got, want,
                "op {} (addr {:#x}, write {}) diverged: {:?} vs {:?}",
                i, addr, write, got, want
            );
        }
        prop_assert_eq!(fast.hits(), reference.hits);
        prop_assert_eq!(fast.misses(), reference.misses);
        // Residency and dirtiness agree line by line afterwards.
        for line in 0..(1u64 << 8) {
            let addr = line << 6;
            prop_assert_eq!(fast.probe(addr), reference.probe(addr));
            prop_assert_eq!(fast.mark_dirty(addr), reference.mark_dirty(addr));
        }
    }

    #[test]
    fn tlb_matches_reference(
        addrs in collection::vec(0u64..(1 << 17), 1..600),
        entries in 1usize..12,
    ) {
        let config = TlbConfig { entries, page_shift: 12, walk_cycles: 30 };
        let mut fast = Tlb::new(config);
        let mut reference = RefTlb::new(config);
        for (i, &addr) in addrs.iter().enumerate() {
            let got = fast.access(addr);
            let want = reference.access(addr);
            prop_assert_eq!(
                got, want,
                "access {} (addr {:#x}) diverged: hit {} vs {}",
                i, addr, got, want
            );
        }
        prop_assert_eq!(fast.stats(), (reference.hits, reference.misses));
    }

    #[test]
    fn hierarchy_matches_reference_composition(
        ops in collection::vec((0u64..(1 << 18), 0u8..8), 1..400),
    ) {
        let config = SimConfig::xeon_like(1);
        let mut fast = CacheHierarchy::new(&config);
        let mut reference = RefHierarchy::new(&config);
        for (i, &(addr, kind)) in ops.iter().enumerate() {
            // kind 0: prefetch install; 1–2: store; 3–7: load. Loads
            // dominate, as in real streams, and repeats are common enough
            // (2^18 span, 64 B lines) to exercise the way predictor.
            if kind == 0 {
                let got = fast.install_prefetch(addr);
                let want = reference.install_prefetch(addr);
                prop_assert_eq!(
                    got, want,
                    "prefetch {} (addr {:#x}) diverged",
                    i, addr
                );
            } else {
                let write = kind <= 2;
                let got = fast.access(addr, write);
                let want = reference.access(addr, write);
                prop_assert_eq!(
                    (got.level, got.memory_writeback), want,
                    "op {} (addr {:#x}, write {}) diverged",
                    i, addr, write
                );
            }
        }
        let (llc_hits, llc_misses) = fast.llc_stats();
        prop_assert_eq!(llc_hits, reference.llc.hits);
        prop_assert_eq!(llc_misses, reference.llc.misses);
    }
}

// ---------------------------------------------------------------------------
// Block-vs-scalar: the batched entry points the blocked engine pipeline
// uses must replay the exact per-op sequences — outcomes and counters —
// whatever the block boundaries.
// ---------------------------------------------------------------------------

/// A random op mix for the block entry points: loads (dependent and not),
/// stores, non-temporal stores, pure compute, and idle intervals.
fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..8, 0u64..(1 << 16), 1u32..16).prop_map(|(kind, addr, cycles)| match kind {
        0 => Op::idle(cycles),
        1 => Op::compute(),
        2 => Op::nt_store(addr),
        3 => Op::store(addr),
        4 => Op::dependent_load(addr),
        _ => Op::load(addr),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cache_access_block_matches_scalar_sequence(
        ops in collection::vec((0u64..(1 << 14), any::<bool>()), 1..600),
        block in 1usize..48,
    ) {
        let config = small_cache_config();
        let mut blocked = SetAssocCache::new(&config, 64);
        let mut scalar = SetAssocCache::new(&config, 64);
        let mut got: Vec<Lookup> = Vec::new();
        for chunk in ops.chunks(block) {
            blocked.access_block(chunk, &mut got);
        }
        let want: Vec<Lookup> = ops.iter().map(|&(a, w)| scalar.access(a, w)).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(
            (blocked.hits(), blocked.misses()),
            (scalar.hits(), scalar.misses())
        );
    }

    #[test]
    fn tlb_access_block_matches_scalar_sequence(
        ops in collection::vec(op_strategy(), 1..600),
        entries in 1usize..12,
        block in 1usize..48,
    ) {
        let config = TlbConfig { entries, page_shift: 12, walk_cycles: 30 };
        let mut blocked = Tlb::new(config);
        let mut scalar = Tlb::new(config);
        let mut got: Vec<bool> = Vec::new();
        let mut chunk_out = Vec::new();
        for chunk in ops.chunks(block) {
            blocked.access_block(chunk, &mut chunk_out);
            got.extend_from_slice(&chunk_out);
        }
        let mut want = Vec::new();
        for op in &ops {
            if op.idle {
                continue;
            }
            if let Some((addr, _)) = op.access {
                want.push(scalar.access(addr));
            }
        }
        prop_assert_eq!(got, want);
        prop_assert_eq!(blocked.stats(), scalar.stats());
    }

    #[test]
    fn hierarchy_l1_block_pass_matches_scalar_l1(
        ops in collection::vec(op_strategy(), 1..400),
        block in 1usize..48,
    ) {
        let config = SimConfig::xeon_like(1);
        let mut hierarchy = CacheHierarchy::new(&config);
        let mut reference = RefCache::new(&config.l1, config.line_size);
        let mut got: Vec<bool> = Vec::new();
        let mut chunk_out = Vec::new();
        for chunk in ops.chunks(block) {
            hierarchy.l1_probe_block(chunk, &mut chunk_out);
            got.extend_from_slice(&chunk_out);
        }
        // The L1 pass is a plain demand-access sequence over every non-idle,
        // non-NT memory op: same filtering, same load/store classification,
        // same hit/miss evolution as the reference L1 run per-op.
        let mut want = Vec::new();
        for op in &ops {
            if op.idle {
                continue;
            }
            if let Some((addr, kind)) = op.access {
                if matches!(kind, AccessKind::NonTemporalStore) {
                    continue;
                }
                let write = !matches!(kind, AccessKind::Load { .. });
                want.push(reference.access(addr, write) == Lookup::Hit);
            }
        }
        prop_assert_eq!(got, want);
        // The pass touches L1 only: LLC counters must still be zero.
        prop_assert_eq!(hierarchy.llc_stats(), (0, 0));
    }
}

/// The predictor's sweet spot — long runs of repeat accesses to one line
/// interleaved with conflicting lines — deserves a deterministic dense
/// version on top of the random streams above.
#[test]
fn repeat_heavy_stream_matches_reference() {
    let config = SimConfig::xeon_like(1);
    let mut fast = CacheHierarchy::new(&config);
    let mut reference = RefHierarchy::new(&config);
    let mut addr: u64 = 0x40;
    for step in 0..20_000u64 {
        // Linear-congruential hop every 7th op, otherwise hammer the same
        // line alternating loads and stores.
        if step % 7 == 0 {
            addr = (addr
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1442695))
                & 0x3_FFFF;
        }
        let write = step % 3 == 0;
        let got = fast.access(addr, write);
        let want = reference.access(addr, write);
        assert_eq!(
            (got.level, got.memory_writeback),
            want,
            "step {step} (addr {addr:#x}, write {write})"
        );
    }
    let (llc_hits, llc_misses) = fast.llc_stats();
    assert_eq!(
        (llc_hits, llc_misses),
        (reference.llc.hits, reference.llc.misses)
    );
}
