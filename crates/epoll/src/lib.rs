//! Minimal, dependency-free `epoll`/`eventfd` bindings for Linux.
//!
//! The workspace has a hard no-external-deps rule, and `std` does not expose
//! a readiness API, so this crate makes the four syscalls the serve reactor
//! needs (`epoll_create1`, `epoll_ctl`, `epoll_pwait`, `eventfd2`) directly
//! via inline assembly — no `libc`. All `unsafe` in the serve stack lives
//! here, behind a safe RAII API:
//!
//! * [`Epoll`] — an epoll instance: register/modify/deregister interest for
//!   any [`AsRawFd`] type and wait for [`Event`]s. The fd is closed on drop.
//! * [`EventFd`] — a nonblocking wakeup channel: any thread may
//!   [`EventFd::notify`] to make a blocked [`Epoll::wait`] return.
//!
//! Supported targets are `linux` on `x86_64` and `aarch64`; elsewhere every
//! constructor returns [`io::ErrorKind::Unsupported`] so dependents still
//! compile (and fail loudly at runtime, not at build time).

#![warn(missing_docs)]

use std::io;
use std::os::fd::{AsRawFd, OwnedFd, RawFd};

/// Readiness: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// Condition: error on the fd (always reported, need not be requested).
pub const EPOLLERR: u32 = 0x008;
/// Condition: hangup on the fd (always reported, need not be requested).
pub const EPOLLHUP: u32 = 0x010;
/// Readiness: the peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Mode: edge-triggered delivery (one event per readiness transition).
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0o2000000;
const EFD_CLOEXEC: usize = 0o2000000;
const EFD_NONBLOCK: usize = 0o4000;
const EINTR: i32 = 4;
const EAGAIN: i32 = 11;

/// One readiness notification from [`Epoll::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The `token` the fd was registered with.
    pub token: u64,
    /// Bitwise OR of the `EPOLL*` readiness/condition flags.
    pub flags: u32,
}

/// The kernel's `struct epoll_event`. Packed on x86-64 only (kernel ABI).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    pub const EPOLL_CREATE1: usize = 291;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const LISTEN: usize = 50;
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;

    /// Issues a raw Linux syscall; returns the kernel's raw result
    /// (negative errno on failure).
    pub fn syscall(num: usize, args: [usize; 6]) -> isize {
        let ret: isize;
        // SAFETY: the `syscall` instruction with the x86-64 Linux calling
        // convention (number in rax, args in rdi/rsi/rdx/r10/r8/r9; rcx and
        // r11 clobbered). Callers pass pointers that live across the call.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") num as isize => ret,
                in("rdi") args[0],
                in("rsi") args[1],
                in("rdx") args[2],
                in("r10") args[3],
                in("r8") args[4],
                in("r9") args[5],
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod sys {
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EVENTFD2: usize = 19;
    pub const LISTEN: usize = 201;
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;

    /// Issues a raw Linux syscall; returns the kernel's raw result
    /// (negative errno on failure).
    pub fn syscall(num: usize, args: [usize; 6]) -> isize {
        let ret: isize;
        // SAFETY: `svc 0` with the aarch64 Linux calling convention (number
        // in x8, args in x0–x5, result in x0). Callers pass pointers that
        // live across the call.
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") num,
                inlateout("x0") args[0] => ret,
                in("x1") args[1],
                in("x2") args[2],
                in("x3") args[3],
                in("x4") args[4],
                in("x5") args[5],
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    pub const EPOLL_CREATE1: usize = 0;
    pub const EPOLL_CTL: usize = 0;
    pub const EPOLL_PWAIT: usize = 0;
    pub const EVENTFD2: usize = 0;
    pub const LISTEN: usize = 0;
    pub const READ: usize = 0;
    pub const WRITE: usize = 0;

    /// Stub for unsupported targets: always reports `ENOSYS`.
    pub fn syscall(_num: usize, _args: [usize; 6]) -> isize {
        const ENOSYS: isize = 38;
        -ENOSYS
    }
}

/// Converts a raw syscall result into `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-(ret as i32)))
    } else {
        Ok(ret as usize)
    }
}

/// Wraps a freshly created kernel fd the caller exclusively owns.
fn owned(fd: usize) -> OwnedFd {
    // SAFETY: `fd` came straight back from a successful fd-creating syscall
    // in this module, so it is valid and owned by no other wrapper.
    unsafe { std::os::fd::FromRawFd::from_raw_fd(fd as RawFd) }
}

/// An epoll instance. Closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
    /// Scratch buffer reused across [`Epoll::wait`] calls.
    raw: Vec<RawEvent>,
}

impl std::fmt::Debug for RawEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (events, data) = (self.events, self.data);
        write!(f, "RawEvent({events:#x}, {data})")
    }
}

impl Epoll {
    /// Creates an epoll instance able to report up to `capacity` events per
    /// [`Epoll::wait`] call.
    ///
    /// # Errors
    ///
    /// The `epoll_create1` failure, or `Unsupported` off Linux.
    pub fn new(capacity: usize) -> io::Result<Epoll> {
        let fd = check(sys::syscall(
            sys::EPOLL_CREATE1,
            [EPOLL_CLOEXEC, 0, 0, 0, 0, 0],
        ))?;
        Ok(Epoll {
            fd: owned(fd),
            raw: vec![RawEvent { events: 0, data: 0 }; capacity.max(1)],
        })
    }

    fn ctl(&self, op: usize, fd: RawFd, token: u64, flags: u32) -> io::Result<()> {
        let mut ev = RawEvent {
            events: flags,
            data: token,
        };
        check(sys::syscall(
            sys::EPOLL_CTL,
            [
                self.fd.as_raw_fd() as usize,
                op,
                fd as usize,
                std::ptr::addr_of_mut!(ev) as usize,
                0,
                0,
            ],
        ))
        .map(|_| ())
    }

    /// Registers interest in `flags` readiness for `fd`, tagged with `token`.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure (e.g. the fd is already added).
    pub fn add(&self, fd: &impl AsRawFd, token: u64, flags: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd.as_raw_fd(), token, flags)
    }

    /// Replaces the registered interest for `fd`.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure (e.g. the fd was never added).
    pub fn modify(&self, fd: &impl AsRawFd, token: u64, flags: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd.as_raw_fd(), token, flags)
    }

    /// Removes `fd` from the interest set. (Closing an fd removes it
    /// implicitly; this is for deregistering without closing.)
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure.
    pub fn delete(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
    }

    /// Blocks until at least one registered fd is ready or `timeout_ms`
    /// elapses (`-1` = wait forever), appending results to `events` (which is
    /// cleared first). `EINTR` is retried internally.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_pwait` failure.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        events.clear();
        let n = loop {
            let ret = sys::syscall(
                sys::EPOLL_PWAIT,
                [
                    self.fd.as_raw_fd() as usize,
                    self.raw.as_mut_ptr() as usize,
                    self.raw.len(),
                    timeout_ms as usize,
                    0, // NULL sigmask: behaves exactly like epoll_wait
                    8, // sizeof(sigset_t) as the kernel expects
                ],
            );
            match check(ret) {
                Ok(n) => break n,
                Err(e) if e.raw_os_error() == Some(EINTR) => continue,
                Err(e) => return Err(e),
            }
        };
        for raw in self.raw.iter().take(n) {
            // Copy out of the (possibly packed) kernel struct field by field.
            let (flags, token) = (raw.events, raw.data);
            events.push(Event { token, flags });
        }
        Ok(())
    }
}

/// Re-issues `listen(2)` on an already-listening socket to widen its accept
/// backlog. `std::net::TcpListener::bind` hardcodes a backlog of 128; a
/// synchronized herd of a few hundred connects overflows that queue before a
/// busy reactor thread is scheduled, and the overflow victims see RST on
/// their first write. Linux permits calling `listen` again on a listening
/// socket purely to update the backlog (capped by `net.core.somaxconn`).
///
/// # Errors
///
/// The `listen` failure, or `Unsupported` off Linux.
pub fn widen_listen_backlog(socket: &impl AsRawFd, backlog: u32) -> io::Result<()> {
    check(sys::syscall(
        sys::LISTEN,
        [socket.as_raw_fd() as usize, backlog as usize, 0, 0, 0, 0],
    ))
    .map(|_| ())
}

/// A nonblocking `eventfd` wakeup channel: cross-thread notifications that an
/// [`Epoll`] can wait on. Closed on drop.
#[derive(Debug)]
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    /// Creates a nonblocking, close-on-exec eventfd with counter 0.
    ///
    /// # Errors
    ///
    /// The `eventfd2` failure, or `Unsupported` off Linux.
    pub fn new() -> io::Result<EventFd> {
        let fd = check(sys::syscall(
            sys::EVENTFD2,
            [0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0],
        ))?;
        Ok(EventFd { fd: owned(fd) })
    }

    /// Signals the eventfd, waking any epoll waiting on it. Safe to call
    /// from any thread; a saturated counter still reads as "signalled", so
    /// the (EAGAIN) overflow case is deliberately ignored.
    pub fn notify(&self) {
        let one: u64 = 1;
        let _ = check(sys::syscall(
            sys::WRITE,
            [
                self.fd.as_raw_fd() as usize,
                std::ptr::addr_of!(one) as usize,
                8,
                0,
                0,
                0,
            ],
        ));
    }

    /// Clears pending notifications; returns whether any were pending.
    pub fn drain(&self) -> bool {
        let mut counter: u64 = 0;
        let ret = sys::syscall(
            sys::READ,
            [
                self.fd.as_raw_fd() as usize,
                std::ptr::addr_of_mut!(counter) as usize,
                8,
                0,
                0,
                0,
            ],
        );
        match check(ret) {
            Ok(_) => counter > 0,
            Err(e) => {
                debug_assert_eq!(e.raw_os_error(), Some(EAGAIN));
                false
            }
        }
    }
}

impl AsRawFd for EventFd {
    fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let mut epoll = Epoll::new(8).expect("epoll_create1");
        let efd = EventFd::new().expect("eventfd2");
        epoll.add(&efd, 42, EPOLLIN).expect("add");

        let mut events = Vec::new();
        // Nothing pending: a zero-timeout wait returns no events.
        epoll.wait(&mut events, 0).expect("wait");
        assert!(events.is_empty());

        efd.notify();
        epoll.wait(&mut events, 1000).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        assert_ne!(events[0].flags & EPOLLIN, 0);

        assert!(efd.drain(), "a notification was pending");
        assert!(!efd.drain(), "drained clean");
        epoll.wait(&mut events, 0).expect("wait");
        assert!(events.is_empty(), "level-triggered interest cleared");
    }

    #[test]
    fn notify_is_sticky_across_multiple_notifies() {
        let mut epoll = Epoll::new(8).expect("epoll");
        let efd = EventFd::new().expect("eventfd");
        epoll.add(&efd, 7, EPOLLIN).expect("add");
        for _ in 0..5 {
            efd.notify();
        }
        let mut events = Vec::new();
        epoll.wait(&mut events, 1000).expect("wait");
        assert_eq!(events.len(), 1);
        assert!(efd.drain());
        assert!(!efd.drain());
    }

    #[test]
    fn listen_backlog_can_be_widened_in_place() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        widen_listen_backlog(&listener, 1024).expect("listen");
        // The socket still accepts connections after the re-listen.
        let client =
            std::net::TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (_conn, peer) = listener.accept().expect("accept");
        assert_eq!(peer, client.local_addr().expect("addr"));
    }

    #[test]
    fn tcp_readiness_round_trip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let mut epoll = Epoll::new(8).expect("epoll");
        epoll.add(&listener, 1, EPOLLIN).expect("add listener");

        let mut events = Vec::new();
        epoll.wait(&mut events, 0).expect("wait");
        assert!(events.is_empty(), "no pending connection yet");

        let mut client =
            std::net::TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        epoll.wait(&mut events, 2000).expect("wait");
        assert!(events
            .iter()
            .any(|e| e.token == 1 && e.flags & EPOLLIN != 0));

        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        epoll
            .add(&server_side, 2, EPOLLIN | EPOLLOUT | EPOLLET)
            .expect("add conn");
        client.write_all(b"ping").expect("write");
        client.flush().expect("flush");

        // Edge-triggered: the arrival of data produces exactly one IN edge.
        let mut got_in = false;
        for _ in 0..10 {
            epoll.wait(&mut events, 2000).expect("wait");
            if events
                .iter()
                .any(|e| e.token == 2 && e.flags & EPOLLIN != 0)
            {
                got_in = true;
                break;
            }
        }
        assert!(got_in, "data arrival must produce an IN edge");
        let mut buf = [0u8; 16];
        let mut conn = &server_side;
        let n = conn.read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"ping");

        epoll.delete(&server_side).expect("delete");
    }
}
