//! Differential property: incremental equals from-scratch, byte for byte.
//!
//! The whole value proposition of memsense-stream is that re-solving only
//! the dirty cells is *invisible*: after any sequence of valid deltas, the
//! session's snapshot must be byte-identical to a brand-new session opened
//! on the evolved spec (which solves every cell from scratch). These tests
//! drive random delta sequences — generated against the session's *current*
//! spec so removals always name live points — at random batch sizes and
//! compare the canonical snapshots.

use memsense_model::system::SystemConfig;
use memsense_model::units::Nanoseconds;
use memsense_model::workload::WorkloadParams;
use memsense_stream::grid::{GridSpec, MixEntry};
use memsense_stream::session::{Delta, Session};
use proptest::prelude::*;

/// A small grid keeps each case fast: 2 workloads × 3 bandwidth points ×
/// 2 latency points = 12 cells.
fn small_spec() -> GridSpec {
    let workloads = WorkloadParams::all_classes()
        .into_iter()
        .take(2)
        .map(|workload| MixEntry {
            workload,
            weight: 1.0,
        })
        .collect();
    GridSpec::validated(
        workloads,
        vec![0.0, -1.0, -2.0],
        vec![0.0, 30.0],
        SystemConfig::paper_baseline(),
    )
    .expect("small spec is valid")
}

/// The generator's eager mirror of the grid axes. The session only folds
/// pending ops into its spec when a batch applies, so at batch sizes > 1
/// the *committed* spec lags the op stream; generating against this shadow
/// (which applies every op immediately) keeps removals pointed at points
/// that will still be live when their batch runs.
struct Shadow {
    bandwidth: Vec<f64>,
    latency: Vec<f64>,
    workloads: usize,
}

impl Shadow {
    fn of(spec: &GridSpec) -> Shadow {
        Shadow {
            bandwidth: spec.bandwidth_deltas.clone(),
            latency: spec.latency_steps_ns.clone(),
            workloads: spec.workloads.len(),
        }
    }

    fn add(points: &mut Vec<f64>, value: f64) {
        if !points.iter().any(|p| p.to_bits() == value.to_bits()) {
            points.push(value);
        }
    }

    fn remove(points: &mut Vec<f64>, rng: &mut TestRng) -> Option<f64> {
        if points.len() > 1 {
            let i = rng.below(points.len() as u64) as usize;
            Some(points.remove(i))
        } else {
            None
        }
    }
}

/// Draws one delta valid against the shadow, applying it to the shadow in
/// the same step. Axis points come from a 0.25-step lattice so adds
/// sometimes collide with existing points (exercising the no-op path).
fn draw_delta(rng: &mut TestRng, shadow: &mut Shadow) -> Delta {
    match rng.below(12) {
        // Bandwidth adds stay in a feasible window: the paper baseline has
        // ~5.2 GB/s per core, so deltas in [-3.0, +3.0] always solve.
        0 | 1 => {
            let p = -3.0 + 0.25 * rng.below(25) as f64 + 0.0;
            Shadow::add(&mut shadow.bandwidth, p);
            Delta::AddBandwidth(p)
        }
        2 | 3 => match Shadow::remove(&mut shadow.bandwidth, rng) {
            Some(p) => Delta::RemoveBandwidth(p),
            None => Delta::Flush,
        },
        4 | 5 => {
            let q = 5.0 * rng.below(25) as f64;
            Shadow::add(&mut shadow.latency, q);
            Delta::AddLatency(q)
        }
        6 | 7 => match Shadow::remove(&mut shadow.latency, rng) {
            Some(q) => Delta::RemoveLatency(q),
            None => Delta::Flush,
        },
        8 | 9 => Delta::SetWeight {
            workload: rng.below(shadow.workloads as u64) as usize,
            weight: 0.25 * (1 + rng.below(16)) as f64,
        },
        10 => {
            let latency = [60.0, 75.0, 90.0][rng.below(3) as usize];
            let speed = [1333.0, 1866.7][rng.below(2) as usize];
            Delta::SetSystem(
                SystemConfig::paper_baseline()
                    .with_unloaded_latency(Nanoseconds(latency))
                    .and_then(|s| s.with_channel_speed(speed))
                    .expect("paper-baseline variations are valid"),
            )
        }
        _ => Delta::Flush,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// After an arbitrary valid delta sequence at an arbitrary batch size,
    /// the incremental session snapshot is byte-identical to a from-scratch
    /// session opened on the evolved spec.
    #[test]
    fn incremental_matches_from_scratch(
        seed in 0u64..u64::MAX,
        n in 1usize..33,
        batch in 1usize..9,
    ) {
        let mut rng = TestRng::new(seed);
        let mut session = Session::open(small_spec(), batch)
            .expect("open small session");
        let mut shadow = Shadow::of(session.spec());
        for _ in 0..n {
            let delta = draw_delta(&mut rng, &mut shadow);
            session.submit(std::slice::from_ref(&delta))
                .expect("generated deltas are valid");
        }
        session.submit(&[Delta::Flush]).expect("flush");
        prop_assert_eq!(session.pending(), 0);

        let fresh = Session::open(session.spec().clone(), batch)
            .expect("open from-scratch session");
        prop_assert_eq!(
            session.snapshot(),
            fresh.snapshot(),
            "incremental state diverged from a from-scratch solve \
             (seed {}, {} deltas, batch {})",
            seed, n, batch
        );
    }

    /// The batching knob is performance-only: the same op stream applied at
    /// two different batch sizes converges to the same bytes and the same
    /// number of applied deltas.
    #[test]
    fn batch_size_never_changes_the_result(
        seed in 0u64..u64::MAX,
        n in 1usize..25,
    ) {
        let mut a = Session::open(small_spec(), 1).expect("open");
        let mut b = Session::open(small_spec(), 7).expect("open");
        let mut rng = TestRng::new(seed);
        let mut shadow = Shadow::of(a.spec());
        for _ in 0..n {
            // Both sessions see the identical op stream, so their specs
            // stay in lockstep with the shadow.
            let delta = draw_delta(&mut rng, &mut shadow);
            a.submit(std::slice::from_ref(&delta)).expect("apply to a");
            b.submit(std::slice::from_ref(&delta)).expect("apply to b");
        }
        a.submit(&[Delta::Flush]).expect("flush a");
        b.submit(&[Delta::Flush]).expect("flush b");
        prop_assert_eq!(a.snapshot(), b.snapshot());
        let (deltas_a, ..) = a.counters();
        let (deltas_b, ..) = b.counters();
        prop_assert_eq!(deltas_a, deltas_b);
    }
}
