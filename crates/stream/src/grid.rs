//! The materialized sweep grid a session evolves: a workload mix crossed
//! with a bandwidth-delta axis and a latency-step axis over one hardware
//! configuration.
//!
//! A grid **cell** is one `(workload, bandwidth delta, latency step)`
//! triple; its value is the converged Eq. 1–5 operating point for the
//! baseline system with that per-core bandwidth delta and that much added
//! compulsory latency (the same transforms `bandwidth_sweep` and
//! `latency_sweep` apply, composed). Cells are keyed by [`CellKey`], which
//! orders workloads by mix index and axis points numerically, so every
//! iteration over the grid is deterministic.
//!
//! Axis values are **normalized** on entry: `-0.0` is folded to `+0.0`
//! (IEEE `v + 0.0`), NaN/infinity are rejected, and each axis is kept
//! sorted and duplicate-free. Two grids that describe the same sweep
//! therefore compare — and render — byte-identically.

use std::cmp::Ordering;

use memsense_experiments::json::Json;
use memsense_model::queueing::QueueingCurve;
use memsense_model::sensitivity::{default_bandwidth_deltas, default_latency_steps};
use memsense_model::solver::{solve_cpi, SolvedCpi};
use memsense_model::system::SystemConfig;
use memsense_model::units::{GigabytesPerSecond, Nanoseconds};
use memsense_model::workload::WorkloadParams;

use crate::StreamError;

/// Most points either grid axis accepts, and the most workloads in a mix.
pub const MAX_AXIS_POINTS: usize = 4096;

/// Most cells a grid may materialize (workloads × bandwidth × latency).
/// The per-axis cap alone still admits a ~10¹¹-cell product, whose
/// `cell_keys` allocation alone would abort the process — untrusted specs
/// must be bounded by the *product*, not just each factor. Delta ops that
/// would grow a session past this cap are rejected the same way.
pub const MAX_GRID_CELLS: usize = 1_000_000;

/// An axis value with a total order: finite, `-0.0`-free `f64` compared by
/// `total_cmp`. The normalization invariant makes `Eq` agree with `Ord`.
#[derive(Debug, Clone, Copy)]
pub struct Ordered(f64);

impl Ordered {
    /// Wraps a normalized axis value. Callers must have run
    /// [`normalize_axis_value`] first (the constructor does not re-check).
    pub(crate) fn wrap(v: f64) -> Ordered {
        Ordered(v)
    }

    /// The wrapped value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl PartialEq for Ordered {
    fn eq(&self, other: &Ordered) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}

impl Eq for Ordered {}

impl PartialOrd for Ordered {
    fn partial_cmp(&self, other: &Ordered) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ordered {
    fn cmp(&self, other: &Ordered) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Validates and normalizes one axis value: must be finite; `-0.0` folds to
/// `+0.0` so it can never split two otherwise-identical grids.
///
/// # Errors
///
/// [`StreamError::InvalidDelta`] for NaN or infinite values.
pub fn normalize_axis_value(v: f64) -> Result<f64, StreamError> {
    if !v.is_finite() {
        return Err(StreamError::invalid("axis values must be finite"));
    }
    Ok(v + 0.0)
}

/// One workload of the mix, with the weight its cells carry in aggregated
/// views. The weight scales `weighted_cpi` at render time only — it is not
/// a solver input, which is why weight tweaks never re-solve a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct MixEntry {
    /// The workload parameters (fixed for the session's lifetime).
    pub workload: WorkloadParams,
    /// Mix weight; finite and positive.
    pub weight: f64,
}

/// The full grid description: workload mix × bandwidth axis × latency axis
/// over one system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Workload mix; index identity is stable for a session's lifetime.
    pub workloads: Vec<MixEntry>,
    /// Per-core bandwidth deltas (GB/s, negative = reduction); sorted,
    /// deduplicated, normalized.
    pub bandwidth_deltas: Vec<f64>,
    /// Added compulsory latency steps (ns); sorted, deduplicated,
    /// normalized.
    pub latency_steps_ns: Vec<f64>,
    /// The hardware configuration every cell starts from.
    pub system: SystemConfig,
}

impl GridSpec {
    /// Builds a validated spec: normalizes both axes (finite, `+0.0`,
    /// sorted, deduplicated), and checks the mix weights.
    ///
    /// # Errors
    ///
    /// [`StreamError::InvalidDelta`] for empty inputs, non-finite or
    /// non-positive weights, non-finite axis values, oversized axes, or a
    /// grid whose total cell count exceeds [`MAX_GRID_CELLS`].
    pub fn validated(
        workloads: Vec<MixEntry>,
        bandwidth_deltas: Vec<f64>,
        latency_steps_ns: Vec<f64>,
        system: SystemConfig,
    ) -> Result<GridSpec, StreamError> {
        if workloads.is_empty() {
            return Err(StreamError::invalid("workload mix must not be empty"));
        }
        if workloads.len() > MAX_AXIS_POINTS {
            return Err(StreamError::invalid("too many workloads in the mix"));
        }
        for entry in &workloads {
            check_weight(entry.weight)?;
        }
        let spec = GridSpec {
            workloads,
            bandwidth_deltas: normalize_axis(bandwidth_deltas, "bandwidth")?,
            latency_steps_ns: normalize_axis(latency_steps_ns, "latency")?,
            system,
        };
        check_cell_cap(&spec)?;
        Ok(spec)
    }

    /// The default grid: the three Tab. 6 workload classes at weight 1.0,
    /// the Fig. 8 bandwidth axis, the Fig. 10 latency axis, and the paper
    /// baseline system (3 × 8 × 7 = 168 cells).
    pub fn default_grid() -> GridSpec {
        let workloads = WorkloadParams::all_classes()
            .into_iter()
            .map(|workload| MixEntry {
                workload,
                weight: 1.0,
            })
            .collect();
        // The defaults are already normalized, finite, and sorted-unique, so
        // validation cannot fail.
        // memsense-lint: allow(no-panic-in-lib) — fixed valid inputs
        GridSpec::validated(
            workloads,
            default_bandwidth_deltas(),
            default_latency_steps(),
            SystemConfig::paper_baseline(),
        )
        .expect("default grid is valid")
    }

    /// Number of cells the grid materializes.
    pub fn cell_count(&self) -> usize {
        self.workloads.len() * self.bandwidth_deltas.len() * self.latency_steps_ns.len()
    }

    /// Every cell key of the grid, in deterministic (workload, bandwidth,
    /// latency) order.
    pub fn cell_keys(&self) -> Vec<CellKey> {
        let mut keys = Vec::with_capacity(self.cell_count());
        for workload in 0..self.workloads.len() {
            for &bw in &self.bandwidth_deltas {
                for &lat in &self.latency_steps_ns {
                    keys.push(CellKey {
                        workload,
                        bandwidth_delta: Ordered::wrap(bw),
                        latency_step: Ordered::wrap(lat),
                    });
                }
            }
        }
        keys
    }
}

/// Checks a spec against [`MAX_GRID_CELLS`]. Run on every spec entering a
/// session — at open *and* after each axis-growing delta — so no path can
/// materialize an unbounded grid. The factors are each ≤
/// [`MAX_AXIS_POINTS`] = 2¹², so the product (≤ 2³⁶) cannot overflow.
///
/// # Errors
///
/// [`StreamError::InvalidDelta`] naming the count and the cap.
pub fn check_cell_cap(spec: &GridSpec) -> Result<(), StreamError> {
    let count = spec.cell_count();
    if count > MAX_GRID_CELLS {
        return Err(StreamError::InvalidDelta(format!(
            "grid would materialize {count} cells; the cap is {MAX_GRID_CELLS}"
        )));
    }
    Ok(())
}

/// Validates a mix weight: finite and positive.
///
/// # Errors
///
/// [`StreamError::InvalidDelta`] otherwise.
pub fn check_weight(weight: f64) -> Result<(), StreamError> {
    if !weight.is_finite() || weight <= 0.0 {
        return Err(StreamError::invalid("weights must be finite and positive"));
    }
    Ok(())
}

fn normalize_axis(values: Vec<f64>, which: &'static str) -> Result<Vec<f64>, StreamError> {
    if values.is_empty() {
        return Err(StreamError::InvalidDelta(format!(
            "{which} axis must not be empty"
        )));
    }
    if values.len() > MAX_AXIS_POINTS {
        return Err(StreamError::InvalidDelta(format!(
            "{which} axis accepts at most {MAX_AXIS_POINTS} points"
        )));
    }
    let mut out = Vec::with_capacity(values.len());
    for v in values {
        out.push(normalize_axis_value(v)?);
    }
    out.sort_by(f64::total_cmp);
    out.dedup_by(|a, b| a.to_bits() == b.to_bits());
    Ok(out)
}

/// Identity of one grid cell: workload mix index plus the two axis values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellKey {
    /// Index into the spec's workload mix.
    pub workload: usize,
    /// Per-core bandwidth delta (GB/s), normalized.
    pub bandwidth_delta: Ordered,
    /// Added compulsory latency (ns), normalized.
    pub latency_step: Ordered,
}

impl CellKey {
    /// Creates a key from already-normalized axis values.
    pub fn new(workload: usize, bandwidth_delta: f64, latency_step: f64) -> CellKey {
        CellKey {
            workload,
            bandwidth_delta: Ordered::wrap(bandwidth_delta),
            latency_step: Ordered::wrap(latency_step),
        }
    }

    /// The cell identity as a JSON object (used for `removed` lists).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload_index", Json::num(self.workload as f64)),
            (
                "bandwidth_delta_gbps",
                Json::num(self.bandwidth_delta.value()),
            ),
            ("latency_step_ns", Json::num(self.latency_step.value())),
        ])
    }
}

/// The solved value of one cell, with the derived system quantities the
/// render needs (recomputing them would re-derive the per-cell system).
#[derive(Debug, Clone, PartialEq)]
pub struct CellState {
    /// Converged operating point.
    pub solved: SolvedCpi,
    /// Per-core effective bandwidth (GB/s) at this cell.
    pub bandwidth_per_core: f64,
    /// Compulsory latency (ns) at this cell.
    pub unloaded_latency_ns: f64,
}

/// Solves one cell: the spec's system with the cell's per-core bandwidth
/// delta and added compulsory latency, solved for the cell's workload.
///
/// # Errors
///
/// Propagates [`memsense_model::ModelError`] from infeasible deltas or a
/// non-converging solve.
pub fn solve_cell(
    spec: &GridSpec,
    key: CellKey,
    curve: &QueueingCurve,
) -> Result<CellState, memsense_model::ModelError> {
    let sys = spec
        .system
        .clone()
        .with_bandwidth_per_core_delta(GigabytesPerSecond(key.bandwidth_delta.value()))?;
    let sys = sys.clone().with_unloaded_latency(Nanoseconds(
        sys.unloaded_latency().value() + key.latency_step.value(),
    ))?;
    let solved = solve_cpi(&spec.workloads[key.workload].workload, &sys, curve)?;
    Ok(CellState {
        solved,
        bandwidth_per_core: sys.bandwidth_per_core().value(),
        unloaded_latency_ns: sys.unloaded_latency().value(),
    })
}

/// Renders one cell (identity + solved value + weighted CPI) as JSON.
pub fn cell_json(spec: &GridSpec, key: CellKey, state: &CellState) -> Json {
    let entry = &spec.workloads[key.workload];
    Json::obj(vec![
        ("workload", Json::str(&entry.workload.name)),
        ("workload_index", Json::num(key.workload as f64)),
        (
            "bandwidth_delta_gbps",
            Json::num(key.bandwidth_delta.value()),
        ),
        ("latency_step_ns", Json::num(key.latency_step.value())),
        (
            "bandwidth_per_core_gbps",
            Json::num(state.bandwidth_per_core),
        ),
        ("unloaded_latency_ns", Json::num(state.unloaded_latency_ns)),
        ("cpi", Json::num(state.solved.cpi_eff)),
        ("utilization", Json::num(state.solved.utilization)),
        ("regime", Json::str(state.solved.regime.token())),
        ("weight", Json::num(entry.weight)),
        (
            "weighted_cpi",
            Json::num(entry.weight * state.solved.cpi_eff),
        ),
    ])
}

/// Renders the system configuration for snapshots.
pub fn system_json(system: &SystemConfig) -> Json {
    Json::obj(vec![
        ("sockets", Json::num(system.sockets() as f64)),
        ("cores", Json::num(system.cores() as f64)),
        (
            "hardware_threads",
            Json::num(system.hardware_threads() as f64),
        ),
        ("core_clock_ghz", Json::num(system.core_clock().value())),
        ("channels", Json::num(system.channels() as f64)),
        (
            "channel_mega_transfers",
            Json::num(system.channel_mega_transfers()),
        ),
        ("efficiency", Json::num(system.efficiency())),
        (
            "unloaded_latency_ns",
            Json::num(system.unloaded_latency().value()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_has_the_paper_axes() {
        let spec = GridSpec::default_grid();
        assert_eq!(spec.workloads.len(), 3);
        assert_eq!(spec.bandwidth_deltas.len(), 8);
        assert_eq!(spec.latency_steps_ns.len(), 7);
        assert_eq!(spec.cell_count(), 168);
        assert_eq!(spec.cell_keys().len(), 168);
    }

    #[test]
    fn axes_are_normalized_sorted_and_deduplicated() {
        let spec = GridSpec::validated(
            GridSpec::default_grid().workloads,
            vec![-0.5, 0.0, -0.0, -0.5],
            vec![10.0, 0.0, 10.0],
            SystemConfig::paper_baseline(),
        )
        .unwrap();
        assert_eq!(spec.bandwidth_deltas, vec![-0.5, 0.0]);
        // -0.0 folded away: the surviving zero is +0.0.
        assert_eq!(spec.bandwidth_deltas[1].to_bits(), 0.0f64.to_bits());
        assert_eq!(spec.latency_steps_ns, vec![0.0, 10.0]);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let base = GridSpec::default_grid();
        assert!(GridSpec::validated(
            Vec::new(),
            vec![0.0],
            vec![0.0],
            SystemConfig::paper_baseline()
        )
        .is_err());
        assert!(GridSpec::validated(
            base.workloads.clone(),
            vec![f64::NAN],
            vec![0.0],
            SystemConfig::paper_baseline()
        )
        .is_err());
        let mut bad_weight = base.workloads.clone();
        bad_weight[0].weight = 0.0;
        assert!(GridSpec::validated(
            bad_weight,
            vec![0.0],
            vec![0.0],
            SystemConfig::paper_baseline()
        )
        .is_err());
    }

    #[test]
    fn oversized_cell_products_are_rejected() {
        // Each axis is individually under MAX_AXIS_POINTS, but the product
        // (3 × 2048 × 2048 ≈ 12.6M) blows the total-cell cap: exactly the
        // small-request/huge-allocation shape the cap exists to stop.
        let axis: Vec<f64> = (0..2048).map(f64::from).collect();
        let err = GridSpec::validated(
            GridSpec::default_grid().workloads,
            axis.clone(),
            axis,
            SystemConfig::paper_baseline(),
        )
        .unwrap_err();
        assert!(
            matches!(&err, StreamError::InvalidDelta(m) if m.contains("cap")),
            "{err:?}"
        );

        // At the cap exactly: accepted (1 workload × 1000 × 1000).
        let axis: Vec<f64> = (0..1000).map(f64::from).collect();
        let workloads = GridSpec::default_grid().workloads.into_iter().take(1);
        let spec = GridSpec::validated(
            workloads.collect(),
            axis.clone(),
            axis,
            SystemConfig::paper_baseline(),
        )
        .unwrap();
        assert_eq!(spec.cell_count(), MAX_GRID_CELLS);
    }

    #[test]
    fn cell_keys_are_totally_ordered_and_deterministic() {
        let spec = GridSpec::default_grid();
        let keys = spec.cell_keys();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "cell_keys iterates in key order");
    }

    #[test]
    fn solve_cell_matches_the_sweep_transforms() {
        use memsense_model::sensitivity::{bandwidth_sweep, latency_sweep};
        let spec = GridSpec::default_grid();
        let curve = QueueingCurve::composite_default();
        let workload = &spec.workloads[0].workload;

        let bw = bandwidth_sweep(workload, &spec.system, &curve, &[-1.5]).unwrap();
        let cell = solve_cell(&spec, CellKey::new(0, -1.5, 0.0), &curve).unwrap();
        assert_eq!(cell.solved.cpi_eff, bw[0].solved.cpi_eff);

        let lat = latency_sweep(workload, &spec.system, &curve, &[30.0]).unwrap();
        let cell = solve_cell(&spec, CellKey::new(0, 0.0, 30.0), &curve).unwrap();
        assert_eq!(cell.solved.cpi_eff, lat[0].solved.cpi_eff);
    }
}
