//! memsense-stream: sessionful incremental sweep evaluation.
//!
//! The paper's sweeps (Figs. 5–9) recompute an entire
//! bandwidth × latency × workload grid even when one parameter moves. A
//! production "what-if" service sees the opposite access pattern: a stream
//! of small deltas against a mostly-stable model state. This crate makes
//! that incremental: a [`session::Session`] holds a materialized sweep
//! grid ([`grid::GridSpec`]) plus a **dependency index** mapping each
//! tunable parameter (a bandwidth point, a latency point, one workload's
//! mix weight, the hardware config) to the set of grid cells it
//! influences. Clients submit [`session::Delta`] ops; the session batches
//! them by a logical/physical batching knob and applies each batch by
//! re-solving only the dirty cells through `executor::par_map`, emitting a
//! per-batch [`session::Update`] record — changed cells only, canonical
//! JSON, monotone sequence numbers.
//!
//! The contract that makes incremental trustworthy: after any delta
//! sequence, the session state is **byte-identical** to a from-scratch
//! full-grid solve of the evolved spec (`tests/differential.rs` proves it
//! over random sequences). The win is the skip ratio: a single-point delta
//! re-solves only that point's row of cells, so `cells_skipped /
//! cells_resolved` grows with grid size ([`baseline`] measures it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod grid;
pub mod session;

/// Errors a stream session surfaces to callers.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A delta or spec input was malformed (message names the problem).
    InvalidDelta(String),
    /// A cell solve failed; the whole batch is rolled back.
    Model(memsense_model::ModelError),
}

impl StreamError {
    pub(crate) fn invalid(message: &str) -> StreamError {
        StreamError::InvalidDelta(message.to_string())
    }
}

impl core::fmt::Display for StreamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StreamError::InvalidDelta(message) => write!(f, "invalid delta: {message}"),
            StreamError::Model(err) => write!(f, "model error: {err}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<memsense_model::ModelError> for StreamError {
    fn from(err: memsense_model::ModelError) -> StreamError {
        StreamError::Model(err)
    }
}
