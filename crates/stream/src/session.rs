//! Delta-solve sessions: batched incremental evaluation over a grid.
//!
//! A [`Session`] owns one validated [`GridSpec`], the solved state of every
//! cell, and a **dependency index** from each tunable parameter
//! ([`ParamKey`]) to the cells it influences. Submitted [`Delta`] ops
//! accumulate in a pending buffer until the batching knob fires (or an
//! explicit [`Delta::Flush`] arrives); a batch is applied by classifying
//! every touched cell as *re-solve* (solver inputs moved), *revalue*
//! (render-only inputs like mix weights moved), or *removed*, re-solving
//! only the first class through `executor::par_map`, and emitting one
//! [`Update`] per batch carrying the cells whose canonical rendering
//! actually changed.
//!
//! Batch application is **transactional**: all mutation happens on scratch
//! copies and commits only if every dirty cell solves. On failure the
//! session keeps its previous state byte-for-byte (the failed batch's ops
//! are dropped, and the error tells the client why).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use memsense_experiments::executor;
use memsense_experiments::json::Json;
use memsense_model::queueing::QueueingCurve;
use memsense_model::system::SystemConfig;

use crate::grid::{
    cell_json, check_cell_cap, check_weight, normalize_axis_value, solve_cell, system_json,
    CellKey, CellState, GridSpec, MAX_AXIS_POINTS,
};
use crate::StreamError;

/// Most updates buffered per session before the oldest are dropped; a
/// consumer further behind than this has effectively abandoned the stream.
pub const MAX_BUFFERED_UPDATES: usize = 1024;

/// One client-submitted mutation of the session's grid.
#[derive(Debug, Clone, PartialEq)]
pub enum Delta {
    /// Add a per-core bandwidth delta point (GB/s). Adding a point already
    /// on the axis is a no-op.
    AddBandwidth(f64),
    /// Remove a bandwidth point. The point must exist and must not be the
    /// axis's last.
    RemoveBandwidth(f64),
    /// Add a latency step point (ns). Adding an existing point is a no-op.
    AddLatency(f64),
    /// Remove a latency point. The point must exist and must not be the
    /// axis's last.
    RemoveLatency(f64),
    /// Set one workload's mix weight (render-only: no cell re-solves).
    SetWeight {
        /// Index into the session's workload mix.
        workload: usize,
        /// New weight; finite and positive.
        weight: f64,
    },
    /// Replace the hardware configuration (re-solves every cell).
    SetSystem(SystemConfig),
    /// Apply all pending deltas now, regardless of the batching knob.
    Flush,
}

/// A tunable parameter, as the dependency index keys it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ParamKey {
    /// One workload of the mix (weight tweaks).
    Workload(usize),
    /// One bandwidth axis point.
    Bandwidth(crate::grid::Ordered),
    /// One latency axis point.
    Latency(crate::grid::Ordered),
    /// The hardware configuration (influences every cell).
    System,
}

/// One per-batch output record: the canonical JSON body plus its sequence
/// number (also embedded in the body).
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Monotone per-session sequence number (0 = the opening full solve).
    pub seq: u64,
    /// Canonical JSON: `{changed, cells_resolved, cells_skipped, deltas,
    /// grid_cells, removed, seq}`.
    pub body: String,
}

/// What one `submit` call did, for the delta-POST acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitAck {
    /// Ops accepted by this call (including any `Flush`).
    pub accepted: usize,
    /// Batches the call caused to apply.
    pub applied_batches: usize,
    /// Delta ops actually applied (committed) across those batches.
    pub applied_deltas: u64,
    /// Cells re-solved across those batches.
    pub cells_resolved: u64,
    /// Cells the dependency index let those batches skip.
    pub cells_skipped: u64,
    /// Ops still pending (below the batching knob) after the call.
    pub pending: usize,
    /// Latest emitted update sequence number.
    pub seq: u64,
}

/// A failed `submit` call. Only the *offending batch* rolled back; batches
/// applied earlier in the same call stay applied, and `ack` records them —
/// callers surfacing the error must also surface (and account for) the
/// partial ack, or the client cannot tell that session state moved.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitError {
    /// What the call committed before failing (the failed batch's ops are
    /// dropped and are not counted).
    pub ack: SubmitAck,
    /// Why the offending batch rolled back.
    pub error: StreamError,
}

impl core::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        self.error.fmt(f)
    }
}

impl std::error::Error for SubmitError {}

impl From<SubmitError> for StreamError {
    fn from(err: SubmitError) -> StreamError {
        err.error
    }
}

type DepIndex = BTreeMap<ParamKey, BTreeSet<CellKey>>;

/// A sessionful incremental sweep evaluation (see module docs).
#[derive(Debug)]
pub struct Session {
    spec: GridSpec,
    cells: BTreeMap<CellKey, CellState>,
    deps: DepIndex,
    rendered: BTreeMap<CellKey, String>,
    curve: QueueingCurve,
    batch: usize,
    pending: Vec<Delta>,
    next_seq: u64,
    updates: VecDeque<Update>,
    deltas_applied: u64,
    total_resolved: u64,
    total_skipped: u64,
}

impl Session {
    /// Opens a session: solves the full grid once (the seq-0 update) and
    /// builds the dependency index. `batch` is the batching knob: pending
    /// deltas apply once at least that many have accumulated.
    ///
    /// # Errors
    ///
    /// [`StreamError::InvalidDelta`] for a zero or oversized batch knob;
    /// [`StreamError::Model`] if any cell of the opening solve fails.
    pub fn open(spec: GridSpec, batch: usize) -> Result<Session, StreamError> {
        if batch == 0 || batch > MAX_AXIS_POINTS {
            return Err(StreamError::invalid("batch must be in 1..=4096"));
        }
        let curve = QueueingCurve::composite_default();
        let keys = spec.cell_keys();
        let states = executor::par_map("stream.open", keys.clone(), |key| {
            solve_cell(&spec, key, &curve)
        })?;

        let mut cells = BTreeMap::new();
        let mut deps: DepIndex = BTreeMap::new();
        let mut rendered = BTreeMap::new();
        for (key, state) in keys.iter().copied().zip(states) {
            index_cell(&mut deps, key);
            rendered.insert(key, cell_json(&spec, key, &state).canonical());
            cells.insert(key, state);
        }

        let resolved = cells.len() as u64;
        let mut session = Session {
            spec,
            cells,
            deps,
            rendered,
            curve,
            batch,
            pending: Vec::new(),
            next_seq: 0,
            updates: VecDeque::new(),
            deltas_applied: 0,
            total_resolved: 0,
            total_skipped: 0,
        };
        let changed: Vec<CellKey> = session.cells.keys().copied().collect();
        session.emit_update(&changed, &BTreeSet::new(), resolved, 0, 0);
        session.total_resolved = resolved;
        Ok(session)
    }

    /// Submits a slice of deltas. Non-`Flush` ops join the pending buffer;
    /// whenever the buffer reaches the batching knob — or a `Flush`
    /// arrives with anything pending — the buffer applies as one batch.
    ///
    /// # Errors
    ///
    /// On an invalid op or a failed solve the offending batch rolls back
    /// (its ops are dropped, session state untouched); batches already
    /// applied by this call stay applied, and the returned [`SubmitError`]
    /// carries the partial ack describing them.
    pub fn submit(&mut self, ops: &[Delta]) -> Result<SubmitAck, SubmitError> {
        let mut ack = SubmitAck {
            accepted: 0,
            applied_batches: 0,
            applied_deltas: 0,
            cells_resolved: 0,
            cells_skipped: 0,
            pending: 0,
            seq: self.seq(),
        };
        for op in ops {
            ack.accepted += 1;
            let apply = match op {
                Delta::Flush => !self.pending.is_empty(),
                other => {
                    self.pending.push(other.clone());
                    self.pending.len() >= self.batch
                }
            };
            if apply {
                if let Err(error) = self.apply_pending(&mut ack) {
                    ack.pending = self.pending.len();
                    ack.seq = self.seq();
                    return Err(SubmitError { ack, error });
                }
            }
        }
        ack.pending = self.pending.len();
        ack.seq = self.seq();
        Ok(ack)
    }

    fn apply_pending(&mut self, ack: &mut SubmitAck) -> Result<(), StreamError> {
        let ops = std::mem::take(&mut self.pending);
        let deltas = ops.len() as u64;

        // All mutation below happens on scratch copies; `self` commits only
        // after every dirty cell has solved.
        let mut spec = self.spec.clone();
        let mut deps = self.deps.clone();
        let mut need_solve: BTreeSet<CellKey> = BTreeSet::new();
        let mut revalued: BTreeSet<CellKey> = BTreeSet::new();
        let mut removed: BTreeSet<CellKey> = BTreeSet::new();

        for op in &ops {
            match op {
                Delta::AddBandwidth(v) => add_axis_point(
                    Axis::Bandwidth,
                    *v,
                    &mut spec,
                    &mut deps,
                    &mut need_solve,
                    &mut removed,
                )?,
                Delta::RemoveBandwidth(v) => remove_axis_point(
                    Axis::Bandwidth,
                    *v,
                    &mut spec,
                    &mut deps,
                    &mut need_solve,
                    &mut revalued,
                    &mut removed,
                )?,
                Delta::AddLatency(v) => add_axis_point(
                    Axis::Latency,
                    *v,
                    &mut spec,
                    &mut deps,
                    &mut need_solve,
                    &mut removed,
                )?,
                Delta::RemoveLatency(v) => remove_axis_point(
                    Axis::Latency,
                    *v,
                    &mut spec,
                    &mut deps,
                    &mut need_solve,
                    &mut revalued,
                    &mut removed,
                )?,
                Delta::SetWeight { workload, weight } => {
                    let Some(entry) = spec.workloads.get_mut(*workload) else {
                        return Err(StreamError::invalid("workload index out of range"));
                    };
                    check_weight(*weight)?;
                    let weight = *weight + 0.0;
                    if entry.weight.to_bits() != weight.to_bits() {
                        entry.weight = weight;
                        // Weight is render-only: touched cells revalue, no
                        // re-solve — this is the dependency index's payoff.
                        if let Some(touched) = deps.get(&ParamKey::Workload(*workload)) {
                            revalued.extend(touched.iter().copied());
                        }
                    }
                }
                Delta::SetSystem(system) => {
                    if spec.system != *system {
                        spec.system = system.clone();
                        if let Some(touched) = deps.get(&ParamKey::System) {
                            need_solve.extend(touched.iter().copied());
                        }
                    }
                }
                // Flush never enters the pending buffer.
                // memsense-lint: allow(no-panic-in-lib) — submit() filters Flush out
                Delta::Flush => unreachable!("Flush is handled at submit time"),
            }
        }

        // Re-solve only the dirty cells; this is where the incremental win
        // materializes as cells_skipped.
        revalued.retain(|key| !need_solve.contains(key));
        let dirty: Vec<CellKey> = need_solve.iter().copied().collect();
        let solved = {
            let spec_ref = &spec;
            let curve = &self.curve;
            executor::par_map("stream.delta", dirty.clone(), |key| {
                solve_cell(spec_ref, key, curve)
            })?
        };

        // A point added and removed within this same batch never reached
        // the committed grid; reporting it as removed would tell the
        // client about cells it never saw. Filter before the commit below
        // erases the evidence of what was committed.
        removed.retain(|key| self.cells.contains_key(key));

        // Commit.
        self.spec = spec;
        self.deps = deps;
        for key in &removed {
            self.cells.remove(key);
            self.rendered.remove(key);
        }
        for (key, state) in dirty.iter().zip(solved) {
            self.cells.insert(*key, state);
        }

        // A cell counts as changed only if its canonical rendering moved.
        let mut changed = Vec::new();
        for key in need_solve.iter().chain(revalued.iter()) {
            // memsense-lint: allow(no-panic-in-lib) — need_solve/revalued cells survive removal by construction
            let state = self.cells.get(key).expect("dirty cell exists");
            let body = cell_json(&self.spec, *key, state).canonical();
            if self.rendered.get(key) != Some(&body) {
                self.rendered.insert(*key, body);
                changed.push(*key);
            }
        }
        changed.sort();

        let resolved = dirty.len() as u64;
        let skipped = self.cells.len() as u64 - resolved.min(self.cells.len() as u64);
        self.emit_update(&changed, &removed, resolved, skipped, deltas);
        self.deltas_applied += deltas;
        self.total_resolved += resolved;
        self.total_skipped += skipped;
        ack.applied_batches += 1;
        ack.applied_deltas += deltas;
        ack.cells_resolved += resolved;
        ack.cells_skipped += skipped;
        Ok(())
    }

    fn emit_update(
        &mut self,
        changed: &[CellKey],
        removed: &BTreeSet<CellKey>,
        resolved: u64,
        skipped: u64,
        deltas: u64,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let changed_json: Vec<Json> = changed
            .iter()
            .filter_map(|key| self.rendered.get(key).and_then(|s| Json::parse(s).ok()))
            .collect();
        let removed_json: Vec<Json> = removed.iter().map(CellKey::to_json).collect();
        let body = Json::obj(vec![
            ("changed", Json::Arr(changed_json)),
            ("cells_resolved", Json::num(resolved as f64)),
            ("cells_skipped", Json::num(skipped as f64)),
            ("deltas", Json::num(deltas as f64)),
            ("grid_cells", Json::num(self.cells.len() as f64)),
            ("removed", Json::Arr(removed_json)),
            ("seq", Json::num(seq as f64)),
        ])
        .canonical();
        if self.updates.len() == MAX_BUFFERED_UPDATES {
            self.updates.pop_front();
        }
        self.updates.push_back(Update { seq, body });
    }

    /// Drains the buffered per-batch updates, oldest first.
    pub fn take_updates(&mut self) -> Vec<Update> {
        self.updates.drain(..).collect()
    }

    /// The canonical JSON of the full current state — spec plus every cell
    /// — excluding sequence numbers. Two sessions whose grids evolved to
    /// the same spec render byte-identical snapshots, which is the
    /// incremental-equals-from-scratch contract the differential test
    /// pins.
    pub fn snapshot(&self) -> String {
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|(key, state)| cell_json(&self.spec, *key, state))
            .collect();
        let workloads: Vec<Json> = self
            .spec
            .workloads
            .iter()
            .map(|entry| {
                Json::obj(vec![
                    ("name", Json::str(&entry.workload.name)),
                    ("weight", Json::num(entry.weight)),
                ])
            })
            .collect();
        Json::obj(vec![
            (
                "bandwidth_deltas",
                Json::Arr(
                    self.spec
                        .bandwidth_deltas
                        .iter()
                        .map(|&v| Json::num(v))
                        .collect(),
                ),
            ),
            ("cells", Json::Arr(cells)),
            (
                "latency_steps_ns",
                Json::Arr(
                    self.spec
                        .latency_steps_ns
                        .iter()
                        .map(|&v| Json::num(v))
                        .collect(),
                ),
            ),
            ("system", system_json(&self.spec.system)),
            ("workloads", Json::Arr(workloads)),
        ])
        .canonical()
    }

    /// The session's current (evolved) grid spec.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Latest emitted update sequence number.
    pub fn seq(&self) -> u64 {
        self.next_seq.saturating_sub(1)
    }

    /// The batching knob.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Cells currently materialized.
    pub fn grid_cells(&self) -> usize {
        self.cells.len()
    }

    /// Ops accepted but not yet applied.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Lifetime counters: (deltas applied, cells re-solved, cells skipped).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.deltas_applied, self.total_resolved, self.total_skipped)
    }
}

enum Axis {
    Bandwidth,
    Latency,
}

fn index_cell(deps: &mut DepIndex, key: CellKey) {
    deps.entry(ParamKey::Workload(key.workload))
        .or_default()
        .insert(key);
    deps.entry(ParamKey::Bandwidth(key.bandwidth_delta))
        .or_default()
        .insert(key);
    deps.entry(ParamKey::Latency(key.latency_step))
        .or_default()
        .insert(key);
    deps.entry(ParamKey::System).or_default().insert(key);
}

fn unindex_cell(deps: &mut DepIndex, key: CellKey) {
    for param in [
        ParamKey::Workload(key.workload),
        ParamKey::Bandwidth(key.bandwidth_delta),
        ParamKey::Latency(key.latency_step),
        ParamKey::System,
    ] {
        if let Some(set) = deps.get_mut(&param) {
            set.remove(&key);
            if set.is_empty() {
                deps.remove(&param);
            }
        }
    }
}

fn add_axis_point(
    axis: Axis,
    value: f64,
    spec: &mut GridSpec,
    deps: &mut DepIndex,
    need_solve: &mut BTreeSet<CellKey>,
    removed: &mut BTreeSet<CellKey>,
) -> Result<(), StreamError> {
    let value = normalize_axis_value(value)?;
    let points = match axis {
        Axis::Bandwidth => &mut spec.bandwidth_deltas,
        Axis::Latency => &mut spec.latency_steps_ns,
    };
    if points.iter().any(|p| p.to_bits() == value.to_bits()) {
        return Ok(());
    }
    if points.len() >= MAX_AXIS_POINTS {
        return Err(StreamError::invalid("axis is at its point cap"));
    }
    let pos = points.partition_point(|p| p.total_cmp(&value).is_lt());
    points.insert(pos, value);
    // `GridSpec::validated` bounds the total cell count at open; deltas
    // must not be a back door past it. `spec` is a scratch copy, so an
    // error here rolls the whole batch back.
    check_cell_cap(spec)?;

    let (bws, lats) = (&spec.bandwidth_deltas, &spec.latency_steps_ns);
    for workload in 0..spec.workloads.len() {
        let cross: &[f64] = match axis {
            Axis::Bandwidth => lats,
            Axis::Latency => bws,
        };
        for &other in cross {
            let key = match axis {
                Axis::Bandwidth => CellKey::new(workload, value, other),
                Axis::Latency => CellKey::new(workload, other, value),
            };
            index_cell(deps, key);
            removed.remove(&key);
            need_solve.insert(key);
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn remove_axis_point(
    axis: Axis,
    value: f64,
    spec: &mut GridSpec,
    deps: &mut DepIndex,
    need_solve: &mut BTreeSet<CellKey>,
    revalued: &mut BTreeSet<CellKey>,
    removed: &mut BTreeSet<CellKey>,
) -> Result<(), StreamError> {
    let value = normalize_axis_value(value)?;
    let (points, param) = match axis {
        Axis::Bandwidth => (
            &mut spec.bandwidth_deltas,
            ParamKey::Bandwidth(crate::grid::Ordered::wrap(value)),
        ),
        Axis::Latency => (
            &mut spec.latency_steps_ns,
            ParamKey::Latency(crate::grid::Ordered::wrap(value)),
        ),
    };
    let Some(pos) = points.iter().position(|p| p.to_bits() == value.to_bits()) else {
        return Err(StreamError::invalid("axis point not in the grid"));
    };
    if points.len() == 1 {
        return Err(StreamError::invalid("cannot remove the last axis point"));
    }
    points.remove(pos);

    let touched: Vec<CellKey> = deps
        .get(&param)
        .map(|set| set.iter().copied().collect())
        .unwrap_or_default();
    for key in touched {
        unindex_cell(deps, key);
        need_solve.remove(&key);
        revalued.remove(&key);
        removed.insert(key);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsense_model::workload::WorkloadParams;

    fn small_spec() -> GridSpec {
        let workloads = WorkloadParams::all_classes()
            .into_iter()
            .take(2)
            .map(|workload| crate::grid::MixEntry {
                workload,
                weight: 1.0,
            })
            .collect();
        GridSpec::validated(
            workloads,
            vec![0.0, -1.0],
            vec![0.0, 20.0],
            SystemConfig::paper_baseline(),
        )
        .unwrap()
    }

    #[test]
    fn open_emits_a_full_seq0_update() {
        let mut session = Session::open(small_spec(), 1).unwrap();
        assert_eq!(session.grid_cells(), 8);
        let updates = session.take_updates();
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].seq, 0);
        let body = Json::parse(&updates[0].body).unwrap();
        assert_eq!(body.get("cells_resolved").and_then(Json::as_u64), Some(8));
        assert_eq!(body.get("cells_skipped").and_then(Json::as_u64), Some(0));
        assert_eq!(
            body.get("changed")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(8)
        );
        assert!(session.take_updates().is_empty(), "drain empties the queue");
    }

    #[test]
    fn single_point_delta_resolves_only_its_row() {
        let mut session = Session::open(small_spec(), 1).unwrap();
        session.take_updates();
        let ack = session.submit(&[Delta::AddBandwidth(-0.5)]).unwrap();
        // 2 workloads x 1 new bandwidth point x 2 latency steps = 4 cells.
        assert_eq!(ack.cells_resolved, 4);
        assert_eq!(ack.cells_skipped, 8);
        assert_eq!(session.grid_cells(), 12);
        assert_eq!(ack.seq, 1);
    }

    #[test]
    fn weight_tweak_revalues_without_resolving() {
        let mut session = Session::open(small_spec(), 1).unwrap();
        session.take_updates();
        let ack = session
            .submit(&[Delta::SetWeight {
                workload: 0,
                weight: 2.5,
            }])
            .unwrap();
        assert_eq!(ack.cells_resolved, 0, "weights are render-only");
        assert_eq!(ack.cells_skipped, 8);
        let updates = session.take_updates();
        let body = Json::parse(&updates[0].body).unwrap();
        let changed = body.get("changed").and_then(Json::as_arr).unwrap();
        assert_eq!(changed.len(), 4, "only workload 0's cells change");
        for cell in changed {
            assert_eq!(cell.get("weight").and_then(Json::as_f64), Some(2.5));
        }
    }

    #[test]
    fn batching_knob_defers_until_full_and_flush_forces() {
        let mut session = Session::open(small_spec(), 3).unwrap();
        session.take_updates();
        let ack = session
            .submit(&[Delta::AddBandwidth(-0.5), Delta::AddBandwidth(-1.5)])
            .unwrap();
        assert_eq!(ack.applied_batches, 0);
        assert_eq!(ack.pending, 2);
        assert!(session.take_updates().is_empty());

        let ack = session.submit(&[Delta::Flush]).unwrap();
        assert_eq!(ack.applied_batches, 1);
        assert_eq!(ack.pending, 0);
        assert_eq!(ack.cells_resolved, 8, "both points solve in one batch");
        assert_eq!(session.take_updates().len(), 1);
    }

    #[test]
    fn add_then_remove_in_one_batch_is_a_wash() {
        // Batch knob 8: both ops pend until the flush applies them together.
        let mut session = Session::open(small_spec(), 8).unwrap();
        session.take_updates();
        let before = session.snapshot();
        let ack = session
            .submit(&[
                Delta::AddBandwidth(-0.5),
                Delta::RemoveBandwidth(-0.5),
                Delta::Flush,
            ])
            .unwrap();
        assert_eq!(session.snapshot(), before);
        assert_eq!(ack.cells_resolved, 0);
        // The washed point's cells never existed in the committed grid, so
        // the update must not report them as removed.
        let updates = session.take_updates();
        let body = Json::parse(&updates[0].body).unwrap();
        assert_eq!(
            body.get("removed")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(0),
            "phantom removals leaked: {}",
            updates[0].body
        );
    }

    #[test]
    fn committed_point_removal_reports_its_cells() {
        let mut session = Session::open(small_spec(), 1).unwrap();
        session.take_updates();
        session.submit(&[Delta::RemoveBandwidth(-1.0)]).unwrap();
        let updates = session.take_updates();
        let body = Json::parse(&updates[0].body).unwrap();
        // 2 workloads × the removed bandwidth point × 2 latency steps.
        assert_eq!(
            body.get("removed")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(4),
            "{}",
            updates[0].body
        );
        assert_eq!(session.grid_cells(), 4);
    }

    #[test]
    fn failed_batch_rolls_back() {
        let mut session = Session::open(small_spec(), 1).unwrap();
        session.take_updates();
        let before = session.snapshot();
        let err = session
            .submit(&[Delta::RemoveBandwidth(123.0)])
            .unwrap_err();
        assert!(matches!(err.error, StreamError::InvalidDelta(_)));
        assert_eq!(err.ack.applied_batches, 0, "nothing committed");
        assert_eq!(err.ack.applied_deltas, 0);
        assert_eq!(session.snapshot(), before, "state is untouched");
        assert_eq!(session.pending(), 0, "the failed batch's ops are dropped");
        assert!(session.take_updates().is_empty());
    }

    #[test]
    fn partial_failure_reports_the_batches_that_did_apply() {
        // Batch knob 1: the first op commits before the second one fails.
        let mut session = Session::open(small_spec(), 1).unwrap();
        session.take_updates();
        let err = session
            .submit(&[Delta::AddBandwidth(-0.5), Delta::RemoveBandwidth(42.0)])
            .unwrap_err();
        assert_eq!(err.ack.applied_batches, 1);
        assert_eq!(err.ack.applied_deltas, 1);
        assert_eq!(err.ack.cells_resolved, 4, "the committed add's cells");
        assert_eq!(err.ack.seq, 1, "the committed batch's update seq");
        assert_eq!(session.grid_cells(), 12, "the first op's cells persist");
        // The emitted update for the committed batch is still drainable.
        assert_eq!(session.take_updates().len(), 1);
    }

    #[test]
    fn axis_growth_past_the_cell_cap_is_rejected() {
        // Exercise `add_axis_point` directly on scratch structures: a spec
        // at exactly the cap (1 workload × 1000 × 1000) must reject one
        // more point without ever enumerating cells.
        let axis: Vec<f64> = (0..1000).map(f64::from).collect();
        let workloads = small_spec().workloads.into_iter().take(1).collect();
        let mut spec = GridSpec::validated(
            workloads,
            axis.clone(),
            axis,
            SystemConfig::paper_baseline(),
        )
        .unwrap();
        let mut deps = DepIndex::new();
        let mut need_solve = BTreeSet::new();
        let mut removed = BTreeSet::new();
        let err = add_axis_point(
            Axis::Bandwidth,
            -1.0,
            &mut spec,
            &mut deps,
            &mut need_solve,
            &mut removed,
        )
        .unwrap_err();
        assert!(
            matches!(&err, StreamError::InvalidDelta(m) if m.contains("cap")),
            "{err:?}"
        );
        assert!(need_solve.is_empty(), "no cells dirtied past the cap");
    }

    #[test]
    fn set_system_resolves_every_cell() {
        let mut session = Session::open(small_spec(), 1).unwrap();
        session.take_updates();
        let system = SystemConfig::paper_baseline()
            .with_unloaded_latency(memsense_model::units::Nanoseconds(90.0))
            .unwrap();
        let ack = session.submit(&[Delta::SetSystem(system)]).unwrap();
        assert_eq!(ack.cells_resolved, 8);
        assert_eq!(ack.cells_skipped, 0);
    }

    #[test]
    fn noop_deltas_change_nothing() {
        let mut session = Session::open(small_spec(), 1).unwrap();
        session.take_updates();
        let before = session.snapshot();
        // Existing point, identical weight, identical system: all no-ops.
        session.submit(&[Delta::AddBandwidth(0.0)]).unwrap();
        session
            .submit(&[Delta::SetWeight {
                workload: 1,
                weight: 1.0,
            }])
            .unwrap();
        session
            .submit(&[Delta::SetSystem(SystemConfig::paper_baseline())])
            .unwrap();
        assert_eq!(session.snapshot(), before);
        for update in session.take_updates() {
            let body = Json::parse(&update.body).unwrap();
            assert_eq!(body.get("cells_resolved").and_then(Json::as_u64), Some(0));
            assert_eq!(
                body.get("changed")
                    .and_then(Json::as_arr)
                    .map(<[Json]>::len),
                Some(0)
            );
        }
    }

    #[test]
    fn removing_the_last_axis_point_is_rejected() {
        let spec = GridSpec::validated(
            small_spec().workloads,
            vec![0.0],
            vec![0.0, 20.0],
            SystemConfig::paper_baseline(),
        )
        .unwrap();
        let mut session = Session::open(spec, 1).unwrap();
        assert!(session.submit(&[Delta::RemoveBandwidth(0.0)]).is_err());
    }

    #[test]
    fn update_buffer_is_bounded() {
        let mut session = Session::open(small_spec(), 1).unwrap();
        for i in 0..(MAX_BUFFERED_UPDATES + 8) {
            // Alternate a weight between two values: every batch is real.
            let weight = if i % 2 == 0 { 2.0 } else { 3.0 };
            session
                .submit(&[Delta::SetWeight {
                    workload: 0,
                    weight,
                }])
                .unwrap();
        }
        let updates = session.take_updates();
        assert_eq!(updates.len(), MAX_BUFFERED_UPDATES);
        // Oldest dropped: the drained run still ends at the latest seq.
        assert_eq!(updates.last().unwrap().seq, session.seq());
    }
}
