//! Stream performance baseline: the throughput-vs-batch-size table.
//!
//! This is the tpchlike-style measurement for the incremental engine: a
//! fixed deterministic delta stream ([`delta_stream`]) is replayed into a
//! fresh default-grid [`Session`] once per batch size (1/8/64/512 deltas
//! per applied batch), timing end-to-end application. Larger batches
//! amortize per-batch overhead (index snapshot, render diff, update
//! emission) across more deltas, which is exactly the logical/physical
//! batching trade-off the exemplar measures.
//!
//! The headline incremental win is gated **absolutely**, not
//! directionally: a single-point delta on the default grid must re-solve
//! under [`MAX_SINGLE_POINT_FRACTION`] of the cells
//! (`single_point_fraction`, recorded in `BENCH_stream.json`). Throughput
//! rows gate directionally like the sim/serve baselines: each batch size's
//! deltas/s may not drop below `baseline / (1 + tolerance)`.

use std::time::Instant;

use memsense_experiments::executor;
use memsense_experiments::json::Json;
use memsense_experiments::render::{f, Table};

use crate::grid::GridSpec;
use crate::session::{Delta, Session};
use crate::StreamError;

/// Schema tag written into `BENCH_stream.json`.
pub const SCHEMA: &str = "memsense-stream-baseline/v1";

/// Batch sizes the table sweeps (deltas per applied batch).
pub const BATCH_SIZES: [usize; 4] = [1, 8, 64, 512];

/// Default length of the replayed delta stream.
pub const DEFAULT_DELTAS: usize = 512;

/// Default regression tolerance for the throughput rows (same rationale as
/// the serve gate: wall-clock on shared CI runners is noisy, so 1.0 allows
/// down to half the recorded rate).
pub const DEFAULT_TOLERANCE: f64 = 1.0;

/// Hard ceiling on the fraction of grid cells a single-point delta may
/// re-solve on the default grid (the incremental acceptance criterion).
pub const MAX_SINGLE_POINT_FRACTION: f64 = 0.2;

/// Errors from parsing a recorded baseline.
#[derive(Debug)]
pub enum BaselineError {
    /// `BENCH_stream.json` could not be parsed against the schema.
    Parse(String),
}

impl core::fmt::Display for BaselineError {
    fn fmt(&self, fmt: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BaselineError::Parse(m) => write!(fmt, "invalid stream baseline file: {m}"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// One row of the throughput-vs-batch-size table.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRow {
    /// Batch size (deltas per applied batch).
    pub batch: usize,
    /// Best-of-repeats wall clock to apply the whole stream, milliseconds.
    pub wall_ms: f64,
    /// Sustained delta throughput at this batch size, deltas per second.
    pub deltas_per_s: f64,
    /// Update records the run emitted (excluding the opening snapshot).
    pub updates: u64,
    /// Cells re-solved across the run.
    pub cells_resolved: u64,
    /// Cells the dependency index skipped across the run.
    pub cells_skipped: u64,
}

/// A recorded stream performance baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBaseline {
    /// Length of the replayed delta stream.
    pub deltas: usize,
    /// Cells in the default grid the stream starts from.
    pub grid_cells: u64,
    /// Cells a single `AddBandwidth` delta re-solved on the default grid.
    pub single_point_resolved: u64,
    /// That re-solve as a fraction of the resulting grid
    /// (`single_point_resolved / grid_cells_after`); gated against
    /// [`MAX_SINGLE_POINT_FRACTION`].
    pub single_point_fraction: f64,
    /// One row per batch size, ascending.
    pub rows: Vec<BatchRow>,
}

/// A fixed, deterministic delta stream: interleaves bandwidth/latency point
/// add+remove pairs (new points outside the default axes, removed a few
/// ops after they appear), mix-weight tweaks cycling the three default
/// workloads, and a sparse `SetSystem` (~1% of ops) that dirties the whole
/// grid. The op sequence is valid under any batch size because batching
/// never reorders ops.
pub fn delta_stream(n: usize) -> Vec<Delta> {
    use memsense_model::system::SystemConfig;
    use memsense_model::units::Nanoseconds;

    let mut ops = Vec::with_capacity(n);
    let mut bw_pending = std::collections::VecDeque::new();
    let mut lat_pending = std::collections::VecDeque::new();
    for i in 0..n {
        let cycle = i / 8;
        let op = match i % 8 {
            0 => {
                // 15 distinct positive points, disjoint from the default
                // (non-positive) bandwidth axis; each is removed at slot 4
                // of its own cycle, long before the cycle index wraps.
                let p = 0.25 * (1.0 + (cycle % 15) as f64);
                bw_pending.push_back(p);
                Delta::AddBandwidth(p)
            }
            2 => {
                // 7 distinct points above the default 0..60 ns axis.
                let q = 65.0 + 5.0 * (cycle % 7) as f64;
                lat_pending.push_back(q);
                Delta::AddLatency(q)
            }
            4 => match bw_pending.pop_front() {
                Some(p) => Delta::RemoveBandwidth(p),
                None => Delta::Flush,
            },
            6 => match lat_pending.pop_front() {
                Some(q) => Delta::RemoveLatency(q),
                None => Delta::Flush,
            },
            7 if i % 96 == 7 => {
                let latency = if (i / 96) % 2 == 0 { 90.0 } else { 75.0 };
                // Paper-baseline variation is always feasible.
                // memsense-lint: allow(no-panic-in-lib) — fixed valid latency values
                Delta::SetSystem(
                    SystemConfig::paper_baseline()
                        .with_unloaded_latency(Nanoseconds(latency))
                        .expect("valid latency"),
                )
            }
            odd => Delta::SetWeight {
                workload: (i + odd) % 3,
                weight: 0.5 + 0.25 * ((i / 3) % 8) as f64,
            },
        };
        ops.push(op);
    }
    ops
}

/// Measures a fresh baseline: replays [`delta_stream`]`(deltas)` into a
/// default-grid session once per batch size (best wall of `repeats`), then
/// probes the single-point re-solve fraction.
///
/// # Errors
///
/// Propagates [`StreamError`] from session construction or delta
/// application (the generated stream is valid, so this indicates a bug).
pub fn measure(deltas: usize, repeats: usize) -> Result<StreamBaseline, StreamError> {
    let ops = delta_stream(deltas);
    let mut rows = Vec::with_capacity(BATCH_SIZES.len());
    for batch in BATCH_SIZES {
        let mut best: Option<BatchRow> = None;
        for _ in 0..repeats.max(1) {
            let mut session = Session::open(GridSpec::default_grid(), batch)?;
            session.take_updates();
            let start = Instant::now();
            let mut resolved = 0;
            let mut skipped = 0;
            for op in &ops {
                let ack = session.submit(std::slice::from_ref(op))?;
                resolved += ack.cells_resolved;
                skipped += ack.cells_skipped;
            }
            let ack = session.submit(&[Delta::Flush])?;
            resolved += ack.cells_resolved;
            skipped += ack.cells_skipped;
            let wall = start.elapsed();
            let wall_ms = wall.as_secs_f64() * 1e3;
            let row = BatchRow {
                batch,
                wall_ms,
                deltas_per_s: deltas as f64 / wall.as_secs_f64().max(1e-9),
                updates: session.take_updates().len() as u64,
                cells_resolved: resolved,
                cells_skipped: skipped,
            };
            if best.as_ref().is_none_or(|b| row.wall_ms < b.wall_ms) {
                best = Some(row);
            }
        }
        // memsense-lint: allow(no-panic-in-lib) — repeats.max(1) guarantees one run
        rows.push(best.expect("at least one repeat"));
    }

    // The headline probe: one new bandwidth point on the fresh default grid.
    let mut session = Session::open(GridSpec::default_grid(), 1)?;
    let grid_cells = session.grid_cells() as u64;
    let ack = session.submit(&[Delta::AddBandwidth(0.25)])?;
    let after = session.grid_cells() as u64;
    // The solver job log is process-global; drain it so repeated bench runs
    // in one process stay bounded.
    let _ = executor::drain_job_log();
    Ok(StreamBaseline {
        deltas,
        grid_cells,
        single_point_resolved: ack.cells_resolved,
        single_point_fraction: ack.cells_resolved as f64 / after.max(1) as f64,
        rows,
    })
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

/// Serializes a baseline to the canonical `BENCH_stream.json` form.
pub fn to_json(baseline: &StreamBaseline) -> String {
    Json::obj(vec![
        ("schema", Json::str(SCHEMA)),
        ("deltas", Json::num(baseline.deltas as f64)),
        ("grid_cells", Json::num(baseline.grid_cells as f64)),
        (
            "single_point_resolved",
            Json::num(baseline.single_point_resolved as f64),
        ),
        (
            "single_point_fraction",
            Json::num(round3(baseline.single_point_fraction)),
        ),
        (
            "rows",
            Json::Arr(
                baseline
                    .rows
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("batch", Json::num(r.batch as f64)),
                            ("wall_ms", Json::num(round3(r.wall_ms))),
                            ("deltas_per_s", Json::num(round3(r.deltas_per_s))),
                            ("updates", Json::num(r.updates as f64)),
                            ("cells_resolved", Json::num(r.cells_resolved as f64)),
                            ("cells_skipped", Json::num(r.cells_skipped as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_string_pretty()
}

/// Parses a baseline from [`to_json`] output.
///
/// # Errors
///
/// Returns [`BaselineError::Parse`] on malformed JSON, a wrong schema tag,
/// or missing fields.
pub fn from_json(text: &str) -> Result<StreamBaseline, BaselineError> {
    let parse = |m: &str| BaselineError::Parse(m.to_string());
    let root = Json::parse(text).map_err(|e| BaselineError::Parse(e.to_string()))?;
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| parse("missing schema tag"))?;
    if schema != SCHEMA {
        return Err(BaselineError::Parse(format!(
            "schema {schema:?}, expected {SCHEMA:?}"
        )));
    }
    let num = |node: &Json, name: &str| {
        node.get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| BaselineError::Parse(format!("missing {name}")))
    };
    let mut rows = Vec::new();
    for row in root
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| parse("missing rows"))?
    {
        rows.push(BatchRow {
            batch: num(row, "batch")? as usize,
            wall_ms: num(row, "wall_ms")?,
            deltas_per_s: num(row, "deltas_per_s")?,
            updates: num(row, "updates")? as u64,
            cells_resolved: num(row, "cells_resolved")? as u64,
            cells_skipped: num(row, "cells_skipped")? as u64,
        });
    }
    if rows.is_empty() {
        return Err(parse("rows must not be empty"));
    }
    Ok(StreamBaseline {
        deltas: num(&root, "deltas")? as usize,
        grid_cells: num(&root, "grid_cells")? as u64,
        single_point_resolved: num(&root, "single_point_resolved")? as u64,
        single_point_fraction: num(&root, "single_point_fraction")?,
        rows,
    })
}

/// Renders the throughput-vs-batch-size table (also mirrored into the
/// EXPERIMENTS.md appendix).
pub fn to_table(baseline: &StreamBaseline) -> Table {
    let mut t = Table::new(
        format!(
            "Stream baseline: {} deltas, single-point re-solve {}/{} cells ({:.1}%)",
            baseline.deltas,
            baseline.single_point_resolved,
            baseline.grid_cells + baseline.single_point_resolved,
            baseline.single_point_fraction * 100.0
        ),
        &[
            "batch",
            "wall_ms",
            "deltas/s",
            "updates",
            "cells_resolved",
            "cells_skipped",
        ],
    );
    for r in &baseline.rows {
        t.row(vec![
            r.batch.to_string(),
            f(r.wall_ms, 3),
            f(r.deltas_per_s, 1),
            r.updates.to_string(),
            r.cells_resolved.to_string(),
            r.cells_skipped.to_string(),
        ]);
    }
    t
}

/// One gated metric of a baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Metric name.
    pub name: String,
    /// Recorded value (or the absolute limit for the fraction gate).
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// `true` when larger is better (throughput); `false` otherwise.
    pub higher_is_better: bool,
    /// Whether this metric is within tolerance.
    pub ok: bool,
}

/// Result of gating a fresh measurement against a recorded baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Tolerance the throughput gates applied.
    pub tolerance: f64,
    /// Gated metrics.
    pub rows: Vec<CompareRow>,
}

impl Comparison {
    /// Whether every gated metric passed.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.ok)
    }

    /// Renders the human-readable gate table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Stream perf gate: current vs baseline, tolerance {:.0}% -> {}",
                self.tolerance * 100.0,
                if self.passed() { "PASS" } else { "FAIL" }
            ),
            &["metric", "baseline", "current", "ratio", "status"],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                f(r.baseline, 3),
                f(r.current, 3),
                if r.baseline > 0.0 {
                    f(r.current / r.baseline, 2)
                } else {
                    "-".to_string()
                },
                if r.ok { "ok" } else { "REGRESSED" }.to_string(),
            ]);
        }
        t
    }

    /// The comparison as a [`Json`] value (the CI report artifact).
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str("memsense-stream-baseline-check/v1")),
            ("tolerance", Json::num(self.tolerance)),
            ("passed", Json::Bool(self.passed())),
            (
                "metrics",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("name", Json::str(&r.name)),
                                ("baseline", Json::num(round3(r.baseline))),
                                ("current", Json::num(round3(r.current))),
                                ("higher_is_better", Json::Bool(r.higher_is_better)),
                                ("ok", Json::Bool(r.ok)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Gates `current` against `baseline`: each batch size's deltas/s must stay
/// at or above `baseline / (1 + tolerance)`, and the single-point re-solve
/// fraction must stay at or below the absolute
/// [`MAX_SINGLE_POINT_FRACTION`] (the incremental contract, independent of
/// machine speed).
pub fn compare(current: &StreamBaseline, baseline: &StreamBaseline, tolerance: f64) -> Comparison {
    let limit = 1.0 + tolerance;
    let mut rows = vec![CompareRow {
        name: "single_point_fraction".to_string(),
        baseline: MAX_SINGLE_POINT_FRACTION,
        current: current.single_point_fraction,
        higher_is_better: false,
        ok: current.single_point_fraction <= MAX_SINGLE_POINT_FRACTION,
    }];
    for base_row in &baseline.rows {
        let cur = current
            .rows
            .iter()
            .find(|r| r.batch == base_row.batch)
            .map(|r| r.deltas_per_s);
        rows.push(match cur {
            Some(cur) => CompareRow {
                name: format!("deltas_per_s[batch={}]", base_row.batch),
                baseline: base_row.deltas_per_s,
                current: cur,
                higher_is_better: true,
                ok: cur >= base_row.deltas_per_s / limit,
            },
            None => CompareRow {
                name: format!("deltas_per_s[batch={}]", base_row.batch),
                baseline: base_row.deltas_per_s,
                current: 0.0,
                higher_is_better: true,
                ok: false,
            },
        });
    }
    Comparison { tolerance, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreamBaseline {
        StreamBaseline {
            deltas: 512,
            grid_cells: 168,
            single_point_resolved: 21,
            single_point_fraction: 0.111,
            rows: BATCH_SIZES
                .iter()
                .map(|&batch| BatchRow {
                    batch,
                    wall_ms: 128.0 / batch as f64,
                    deltas_per_s: 5_000.0 * batch as f64,
                    updates: (512 / batch.min(512)) as u64,
                    cells_resolved: 4_000,
                    cells_skipped: 60_000,
                })
                .collect(),
        }
    }

    #[test]
    fn json_round_trips() {
        let baseline = sample();
        let text = to_json(&baseline);
        let parsed = from_json(&text).expect("round trip");
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn parse_rejects_wrong_schema_and_missing_fields() {
        assert!(from_json("not json").is_err());
        assert!(from_json(r#"{"schema":"something-else/v1"}"#).is_err());
        let missing = format!(r#"{{"schema":{:?}}}"#, SCHEMA);
        assert!(from_json(&missing).is_err());
    }

    #[test]
    fn delta_stream_is_deterministic_and_valid() {
        assert_eq!(delta_stream(512), delta_stream(512));
        // Replaying the stream at two batch sizes yields identical end
        // states (the batching knob is performance-only).
        let ops = delta_stream(96);
        let mut a = Session::open(GridSpec::default_grid(), 1).unwrap();
        let mut b = Session::open(GridSpec::default_grid(), 64).unwrap();
        for op in &ops {
            a.submit(std::slice::from_ref(op)).unwrap();
            b.submit(std::slice::from_ref(op)).unwrap();
        }
        a.submit(&[Delta::Flush]).unwrap();
        b.submit(&[Delta::Flush]).unwrap();
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn gate_is_directional_and_pins_the_fraction() {
        let baseline = sample();
        assert!(compare(&baseline, &baseline, 0.5).passed());

        let mut slow = baseline.clone();
        slow.rows[0].deltas_per_s = baseline.rows[0].deltas_per_s / 4.0;
        let gate = compare(&slow, &baseline, 0.5);
        assert!(!gate.passed());

        // Faster always passes.
        let mut fast = baseline.clone();
        for row in &mut fast.rows {
            row.deltas_per_s *= 10.0;
        }
        assert!(compare(&fast, &baseline, 0.5).passed());

        // The fraction gate is absolute: breaching 20% fails regardless of
        // the recorded value or tolerance.
        let mut coarse = baseline.clone();
        coarse.single_point_fraction = 0.5;
        let gate = compare(&coarse, &baseline, 10.0);
        assert!(!gate.passed());
        assert!(!gate.rows[0].ok);
    }

    #[test]
    fn measure_smoke_meets_the_incremental_contract() {
        // A tiny stream keeps this test fast while still exercising every
        // op kind (96 ops covers one full SetSystem cycle).
        let baseline = measure(96, 1).expect("measure");
        assert_eq!(baseline.rows.len(), BATCH_SIZES.len());
        assert_eq!(baseline.grid_cells, 168);
        assert_eq!(baseline.single_point_resolved, 21);
        assert!(
            baseline.single_point_fraction <= MAX_SINGLE_POINT_FRACTION,
            "single-point delta re-solved {:.1}% of cells",
            baseline.single_point_fraction * 100.0
        );
        for row in &baseline.rows {
            assert!(row.deltas_per_s > 0.0);
        }
        // Fine-grained batches realize the incremental win: at batch=1 the
        // weight-only and single-point batches dominate, so far more cells
        // are skipped than re-solved. (At batch=512 the whole stream lands
        // in one batch whose SetSystem dirties the full grid, so no such
        // ratio holds there — that is the batching trade-off the table
        // documents.)
        assert!(baseline.rows[0].cells_skipped > baseline.rows[0].cells_resolved);
    }
}
