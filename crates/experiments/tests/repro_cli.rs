//! End-to-end tests of the `repro` command-line binary.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

#[test]
fn help_lists_targets() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    for target in ["fig1", "fig11", "tab7", "hierarchy", "scorecard", "design"] {
        assert!(err.contains(target), "help mentions {target}: {err}");
    }
}

#[test]
fn unknown_target_fails() {
    let out = repro(&["nonsense"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown target"));
}

#[test]
fn fig1_prints_and_writes_csv() {
    let out = repro(&["fig1"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Fig. 1"));
    assert!(stdout.contains("cpu_capability"));
    assert!(stdout.contains("[wrote "));
}

#[test]
fn model_only_targets_run_quickly() {
    // These need no calibration, so they must run fast and cleanly.
    for target in ["fig8", "fig9", "fig10", "fig11", "tab7", "hierarchy", "numa", "futuretech", "tornado", "cpistack", "design"] {
        let out = repro(&[target]);
        assert!(
            out.status.success(),
            "{target}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(!out.stdout.is_empty(), "{target} produced output");
    }
}

#[test]
fn fig10_includes_ascii_plot() {
    let out = repro(&["fig10"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Fig. 10 (shape)"));
    assert!(stdout.contains("Enterprise class"));
    assert!(stdout.contains("[x: compulsory latency ns]"));
}
