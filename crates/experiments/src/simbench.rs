//! Simulator performance baseline: record, persist, and regression-check.
//!
//! Sweep cells, calibrations, characterization series, and I/O-pressure
//! tables all re-execute the `crates/sim` engine, so simulator throughput
//! bounds how many design points a repro run can explore. This module pins
//! that throughput down: [`measure`] times a fixed set of sim-heavy repro
//! stages (reduced budgets, one stage at a time — the worker pool serves
//! each stage's inner jobs) through the executor's job telemetry,
//! [`to_json`]/[`from_json`] persist the result as the canonical
//! `BENCH_sim.json`, and [`compare`] gates a fresh measurement against the
//! recorded baseline with a wall-clock tolerance — the CI `sim-perf` job
//! fails when any stage (or the total) regresses beyond it, when the
//! recorded stage set has diverged from [`STAGES`], or when the thread
//! counts differ. [`measure_profiled`] additionally attributes simulator
//! work counters (ops, cache/TLB lookups, prefetch fills) to each stage.

use std::collections::BTreeMap;

use memsense_workloads::{Class, Workload};

use crate::calibrate::{calibrate, CalibrationBudget};
use crate::executor::{drain_job_log, par_map_full, thread_count};
use crate::io_pressure::io_pressure_table;
use crate::json::Json;
use crate::render::{f, Table};
use crate::timeseries::{class_series, SeriesBudget};

/// Schema tag written into `BENCH_sim.json`.
pub const SCHEMA: &str = "memsense-sim-baseline/v1";

/// Executor label prefix for baseline stage jobs.
pub const LABEL_PREFIX: &str = "simbench/";

/// Default regression tolerance: a stage may take up to
/// `baseline × (1 + tolerance)` before the check fails. 0.5 absorbs CI
/// machine variance while still rejecting a pre-overhaul-sized slowdown.
pub const DEFAULT_TOLERANCE: f64 = 0.5;

/// Default repeat count; each stage's recorded wall is the minimum across
/// repeats (best-of-N rejects scheduler noise).
pub const DEFAULT_REPEATS: usize = 3;

/// The measured stage set: the sim-heavy repro stages on reduced budgets.
/// Order is the report order.
pub const STAGES: [&str; 7] = [
    "timeseries/bigdata",
    "timeseries/enterprise",
    "timeseries/hpc",
    "calibrate/oltp",
    "calibrate/spark",
    "calibrate/bwaves",
    "io_pressure",
];

/// Errors from measuring, parsing, or checking a baseline.
#[derive(Debug)]
pub enum SimBenchError {
    /// A benchmark stage failed to run.
    Stage(String),
    /// `BENCH_sim.json` could not be parsed against the schema.
    Parse(String),
}

impl core::fmt::Display for SimBenchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimBenchError::Stage(m) => write!(f, "benchmark stage failed: {m}"),
            SimBenchError::Parse(m) => write!(f, "invalid baseline file: {m}"),
        }
    }
}

impl std::error::Error for SimBenchError {}

/// One timed stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTime {
    /// Stage name (one of [`STAGES`]).
    pub name: String,
    /// Best-of-repeats wall clock, milliseconds.
    pub wall_ms: f64,
}

/// A recorded simulator performance baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Executor worker threads during measurement (1 = serial, the
    /// recommended recording mode).
    pub threads: usize,
    /// Repeats each stage ran; walls are minima across them.
    pub repeats: usize,
    /// Per-stage timings in [`STAGES`] order.
    pub stages: Vec<StageTime>,
}

impl Baseline {
    /// Sum of per-stage walls, milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.stages.iter().map(|s| s.wall_ms).sum()
    }

    /// Looks up a stage's wall by name.
    pub fn stage_ms(&self, name: &str) -> Option<f64> {
        self.stages
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.wall_ms)
    }
}

fn run_stage(name: &str) -> Result<(), SimBenchError> {
    let stage = |r: Result<(), crate::ExperimentError>| {
        r.map_err(|e| SimBenchError::Stage(format!("{name}: {e}")))
    };
    match name {
        "timeseries/bigdata" => {
            stage(class_series(Class::BigData, &SeriesBudget::quick()).map(drop))
        }
        "timeseries/enterprise" => {
            stage(class_series(Class::Enterprise, &SeriesBudget::quick()).map(drop))
        }
        "timeseries/hpc" => stage(class_series(Class::Hpc, &SeriesBudget::quick()).map(drop)),
        "calibrate/oltp" => stage(calibrate(Workload::Oltp, &CalibrationBudget::quick()).map(drop)),
        "calibrate/spark" => {
            stage(calibrate(Workload::Spark, &CalibrationBudget::quick()).map(drop))
        }
        "calibrate/bwaves" => {
            stage(calibrate(Workload::Bwaves, &CalibrationBudget::quick()).map(drop))
        }
        "io_pressure" => stage(io_pressure_table(4, 40_000, 60_000.0).map(drop)),
        other => Err(SimBenchError::Stage(format!("unknown stage {other:?}"))),
    }
}

/// Per-stage simulator work counters (ops retired, cache and TLB lookups,
/// prefetch fills) captured from [`memsense_sim::telemetry`] around the
/// stage's first repeat. These are deterministic properties of the stage —
/// unlike walls they do not vary run to run — so one repeat suffices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageProfile {
    /// Stage name (one of [`STAGES`]).
    pub name: String,
    /// Instructions retired across every machine the stage built.
    pub ops: u64,
    /// Cache lookups (hits + misses, all levels).
    pub cache_accesses: u64,
    /// TLB translations (0 when the TLB model is disabled).
    pub tlb_accesses: u64,
    /// Prefetch fills brought into the LLC.
    pub prefetch_fills: u64,
}

/// Times every stage in [`STAGES`] `repeats` times through the executor
/// (labels `simbench/<stage>`), recording each stage's minimum wall clock.
///
/// Stages run **one at a time** regardless of thread count, so each wall is
/// undiluted by co-running stages; the worker pool instead serves the
/// stage's *inner* jobs (calibration sweep points, series workloads,
/// I/O-pressure cells). At `MEMSENSE_THREADS > 1` a stage's wall therefore
/// reflects intra-stage instance parallelism — and because every inner job
/// is an independent machine merged in submission order, the simulated
/// numbers stay byte-identical at any thread count.
///
/// # Errors
///
/// Returns the first failing stage's error.
///
/// # Panics
///
/// Panics if `repeats` is zero.
pub fn measure(repeats: usize) -> Result<Baseline, SimBenchError> {
    measure_profiled(repeats).map(|(baseline, _)| baseline)
}

/// [`measure`], also returning per-stage simulator work counters (the
/// `--profile` data) in [`STAGES`] order.
///
/// # Errors
///
/// Returns the first failing stage's error.
///
/// # Panics
///
/// Panics if `repeats` is zero.
pub fn measure_profiled(repeats: usize) -> Result<(Baseline, Vec<StageProfile>), SimBenchError> {
    assert!(repeats > 0, "at least one repeat");
    // Unrelated records from earlier work in this process would otherwise
    // be misattributed; start from an empty log.
    drain_job_log();
    let mut best: BTreeMap<&str, f64> = BTreeMap::new();
    let mut profiles: BTreeMap<&str, StageProfile> = BTreeMap::new();
    for rep in 0..repeats {
        for &name in STAGES.iter() {
            let before = memsense_sim::telemetry::snapshot();
            let outcomes = par_map_full(vec![name], |_, s| format!("{LABEL_PREFIX}{s}"), run_stage);
            let after = memsense_sim::telemetry::snapshot();
            let log = drain_job_log();
            outcomes.into_iter().collect::<Result<Vec<()>, _>>()?;
            for rec in log {
                let Some(stage) = rec.label.strip_prefix(LABEL_PREFIX) else {
                    continue; // inner jobs dispatched by the stage
                };
                if stage == name {
                    let ms = rec.wall.as_secs_f64() * 1e3;
                    best.entry(name)
                        .and_modify(|b| *b = b.min(ms))
                        .or_insert(ms);
                }
            }
            if rep == 0 {
                // Machines built by the stage are dropped inside it and
                // stages never co-run, so the registry delta is exactly
                // this stage's work at any thread count.
                let d = after.delta_since(&before);
                profiles.insert(
                    name,
                    StageProfile {
                        name: name.to_string(),
                        ops: d.ops,
                        cache_accesses: d.cache_accesses,
                        tlb_accesses: d.tlb_accesses,
                        prefetch_fills: d.prefetch_fills,
                    },
                );
            }
        }
    }
    let baseline = Baseline {
        threads: thread_count(),
        repeats,
        stages: STAGES
            .iter()
            .map(|&name| StageTime {
                name: name.to_string(),
                wall_ms: best.get(name).copied().unwrap_or(0.0),
            })
            .collect(),
    };
    let profiles = STAGES
        .iter()
        .map(|&name| {
            profiles.remove(name).unwrap_or(StageProfile {
                name: name.to_string(),
                ops: 0,
                cache_accesses: 0,
                tlb_accesses: 0,
                prefetch_fills: 0,
            })
        })
        .collect();
    Ok((baseline, profiles))
}

/// Renders the `--profile` table: each stage's wall alongside its simulator
/// work counters (columns documented in EXPERIMENTS.md).
pub fn profile_table(baseline: &Baseline, profiles: &[StageProfile]) -> Table {
    let mut t = Table::new(
        "Sim stage profile: wall clock and simulator work per stage",
        &[
            "stage",
            "wall_ms",
            "ops",
            "cache_accesses",
            "tlb_accesses",
            "prefetch_fills",
        ],
    );
    for p in profiles {
        t.row(vec![
            p.name.clone(),
            f(baseline.stage_ms(&p.name).unwrap_or(0.0), 1),
            p.ops.to_string(),
            p.cache_accesses.to_string(),
            p.tlb_accesses.to_string(),
            p.prefetch_fills.to_string(),
        ]);
    }
    t
}

/// Serializes a baseline to the canonical `BENCH_sim.json` form.
pub fn to_json(baseline: &Baseline) -> String {
    Json::obj(vec![
        ("schema", Json::str(SCHEMA)),
        ("threads", Json::num(baseline.threads as f64)),
        ("repeats", Json::num(baseline.repeats as f64)),
        (
            "total_ms",
            Json::num((baseline.total_ms() * 1e3).round() / 1e3),
        ),
        (
            "stages",
            Json::Arr(
                baseline
                    .stages
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("name", Json::str(s.name.clone())),
                            ("wall_ms", Json::num((s.wall_ms * 1e3).round() / 1e3)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_string_pretty()
}

/// Parses a baseline from [`to_json`] output.
///
/// # Errors
///
/// Returns [`SimBenchError::Parse`] on malformed JSON, a wrong schema tag,
/// or missing fields.
pub fn from_json(text: &str) -> Result<Baseline, SimBenchError> {
    let parse = |m: &str| SimBenchError::Parse(m.to_string());
    let root = Json::parse(text).map_err(|e| SimBenchError::Parse(e.to_string()))?;
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| parse("missing schema tag"))?;
    if schema != SCHEMA {
        return Err(SimBenchError::Parse(format!(
            "schema {schema:?}, expected {SCHEMA:?}"
        )));
    }
    let threads = root
        .get("threads")
        .and_then(Json::as_u64)
        .ok_or_else(|| parse("missing threads"))? as usize;
    let repeats = root
        .get("repeats")
        .and_then(Json::as_u64)
        .ok_or_else(|| parse("missing repeats"))? as usize;
    let stages = root
        .get("stages")
        .and_then(Json::as_arr)
        .ok_or_else(|| parse("missing stages array"))?
        .iter()
        .map(|s| {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| parse("stage missing name"))?;
            let wall_ms = s
                .get("wall_ms")
                .and_then(Json::as_f64)
                .ok_or_else(|| parse("stage missing wall_ms"))?;
            Ok(StageTime {
                name: name.to_string(),
                wall_ms,
            })
        })
        .collect::<Result<Vec<_>, SimBenchError>>()?;
    if stages.is_empty() {
        return Err(parse("baseline has no stages"));
    }
    Ok(Baseline {
        threads,
        repeats,
        stages,
    })
}

/// One row of a baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Stage name.
    pub name: String,
    /// Recorded wall (ms); `None` when the stage is absent from the
    /// baseline file (always a failure — the baseline must be re-recorded).
    pub baseline_ms: Option<f64>,
    /// Freshly measured wall, ms.
    pub current_ms: f64,
    /// Whether this stage is within tolerance.
    pub ok: bool,
}

/// Result of gating a fresh measurement against a recorded baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Tolerance the gate applied.
    pub tolerance: f64,
    /// Per-stage rows in measurement order.
    pub rows: Vec<CompareRow>,
    /// Baseline stages that no longer exist in the current stage set: the
    /// recorded file predates a stage rename/removal and must be
    /// re-recorded (a stale baseline would otherwise silently gate nothing
    /// for those stages).
    pub stale: Vec<String>,
    /// Executor threads the baseline was recorded at.
    pub baseline_threads: usize,
    /// Executor threads of the current measurement.
    pub current_threads: usize,
    /// Baseline total (ms).
    pub baseline_total_ms: f64,
    /// Current total (ms).
    pub current_total_ms: f64,
    /// Whether the summed wall clock is within tolerance.
    pub total_ok: bool,
}

impl Comparison {
    /// Whether baseline and current were measured at the same thread count
    /// (walls at different thread counts are not comparable).
    pub fn threads_ok(&self) -> bool {
        self.baseline_threads == self.current_threads
    }

    /// Whether every stage and the total passed, the baseline stage set is
    /// current, and the thread counts match.
    pub fn passed(&self) -> bool {
        self.total_ok
            && self.stale.is_empty()
            && self.threads_ok()
            && self.rows.iter().all(|r| r.ok)
    }

    /// One-line diagnostics for the failure modes a ratio table cannot
    /// express (stale stage set, thread-count mismatch); empty when neither
    /// applies.
    pub fn diagnostics(&self) -> Vec<String> {
        let mut msgs = Vec::new();
        if !self.stale.is_empty() {
            msgs.push(format!(
                "baseline records stage(s) {:?} that the current build no longer \
                 measures — the recorded stage set diverged from simbench::STAGES; \
                 re-record the baseline (memsense-bench sim-baseline --out BENCH_sim.json)",
                self.stale
            ));
        }
        if !self.threads_ok() {
            msgs.push(format!(
                "baseline was recorded at {} executor thread(s) but the current \
                 measurement used {} — walls are not comparable; re-measure with \
                 MEMSENSE_THREADS={} or re-record the baseline",
                self.baseline_threads, self.current_threads, self.baseline_threads
            ));
        }
        msgs
    }

    /// Renders the human-readable gate table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Sim perf gate: current vs baseline, tolerance {:.0}% -> {}",
                self.tolerance * 100.0,
                if self.passed() { "PASS" } else { "FAIL" }
            ),
            &["stage", "baseline_ms", "current_ms", "ratio", "status"],
        );
        for r in &self.rows {
            let (base, ratio) = match r.baseline_ms {
                Some(b) if b > 0.0 => (f(b, 1), f(r.current_ms / b, 2)),
                Some(b) => (f(b, 1), "-".to_string()),
                None => ("missing".to_string(), "-".to_string()),
            };
            t.row(vec![
                r.name.clone(),
                base,
                f(r.current_ms, 1),
                ratio,
                if r.ok { "ok" } else { "REGRESSED" }.to_string(),
            ]);
        }
        for name in &self.stale {
            t.row(vec![
                name.clone(),
                "recorded".to_string(),
                "missing".to_string(),
                "-".to_string(),
                "STALE".to_string(),
            ]);
        }
        t.row(vec![
            "total".to_string(),
            f(self.baseline_total_ms, 1),
            f(self.current_total_ms, 1),
            if self.baseline_total_ms > 0.0 {
                f(self.current_total_ms / self.baseline_total_ms, 2)
            } else {
                "-".to_string()
            },
            if self.total_ok { "ok" } else { "REGRESSED" }.to_string(),
        ]);
        t
    }

    /// The comparison as a [`Json`] value (the CI report artifact).
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str("memsense-sim-baseline-check/v1")),
            ("tolerance", Json::num(self.tolerance)),
            ("passed", Json::Bool(self.passed())),
            (
                "stale_stages",
                Json::Arr(self.stale.iter().map(Json::str).collect()),
            ),
            ("baseline_threads", Json::num(self.baseline_threads as f64)),
            ("current_threads", Json::num(self.current_threads as f64)),
            (
                "baseline_total_ms",
                Json::num((self.baseline_total_ms * 1e3).round() / 1e3),
            ),
            (
                "current_total_ms",
                Json::num((self.current_total_ms * 1e3).round() / 1e3),
            ),
            ("total_ok", Json::Bool(self.total_ok)),
            (
                "stages",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("name", Json::str(r.name.clone())),
                                (
                                    "baseline_ms",
                                    match r.baseline_ms {
                                        Some(b) => Json::num((b * 1e3).round() / 1e3),
                                        None => Json::Null,
                                    },
                                ),
                                ("current_ms", Json::num((r.current_ms * 1e3).round() / 1e3)),
                                ("ok", Json::Bool(r.ok)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Gates `current` against `baseline`: a stage fails when its wall exceeds
/// `baseline × (1 + tolerance)` or when it is missing from the baseline;
/// the summed total is held to the same bound. The whole comparison also
/// fails when the baseline records a stage the current build no longer
/// measures (a stale file) or when the two were measured at different
/// thread counts — see [`Comparison::diagnostics`].
pub fn compare(current: &Baseline, baseline: &Baseline, tolerance: f64) -> Comparison {
    let limit = 1.0 + tolerance;
    let rows: Vec<CompareRow> = current
        .stages
        .iter()
        .map(|s| {
            let base = baseline.stage_ms(&s.name);
            let ok = match base {
                Some(b) => s.wall_ms <= b * limit,
                None => false,
            };
            CompareRow {
                name: s.name.clone(),
                baseline_ms: base,
                current_ms: s.wall_ms,
                ok,
            }
        })
        .collect();
    let stale: Vec<String> = baseline
        .stages
        .iter()
        .filter(|b| current.stages.iter().all(|c| c.name != b.name))
        .map(|b| b.name.clone())
        .collect();
    let baseline_total = baseline.total_ms();
    let current_total = current.total_ms();
    Comparison {
        tolerance,
        rows,
        stale,
        baseline_threads: baseline.threads,
        current_threads: current.threads,
        baseline_total_ms: baseline_total,
        current_total_ms: current_total,
        total_ok: current_total <= baseline_total * limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline(walls: &[(&str, f64)]) -> Baseline {
        Baseline {
            threads: 1,
            repeats: 3,
            stages: walls
                .iter()
                .map(|(n, w)| StageTime {
                    name: n.to_string(),
                    wall_ms: *w,
                })
                .collect(),
        }
    }

    #[test]
    fn json_roundtrip() {
        let b = baseline(&[("timeseries/bigdata", 129.25), ("io_pressure", 302.5)]);
        let text = to_json(&b);
        let parsed = from_json(&text).unwrap();
        assert_eq!(parsed, b);
        assert!((parsed.total_ms() - 431.75).abs() < 1e-9);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(from_json("{"), Err(SimBenchError::Parse(_))));
        assert!(matches!(
            from_json("{\"schema\": \"other/v9\"}"),
            Err(SimBenchError::Parse(_))
        ));
        let no_stages = "{\"schema\": \"memsense-sim-baseline/v1\", \
                         \"threads\": 1, \"repeats\": 3, \"stages\": []}";
        assert!(matches!(from_json(no_stages), Err(SimBenchError::Parse(_))));
    }

    #[test]
    fn compare_passes_within_tolerance() {
        let base = baseline(&[("a", 100.0), ("b", 200.0)]);
        let current = baseline(&[("a", 140.0), ("b", 250.0)]);
        let c = compare(&current, &base, 0.5);
        assert!(c.passed());
        assert!(c.rows.iter().all(|r| r.ok));
        assert!(c.total_ok);
    }

    #[test]
    fn compare_fails_on_stage_regression() {
        let base = baseline(&[("a", 100.0), ("b", 200.0)]);
        let current = baseline(&[("a", 151.0), ("b", 100.0)]);
        let c = compare(&current, &base, 0.5);
        assert!(!c.passed());
        assert!(!c.rows[0].ok, "stage a exceeded 1.5x");
        assert!(c.total_ok, "total still fine");
        let table = c.to_table().to_ascii();
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("FAIL"));
    }

    #[test]
    fn compare_fails_on_total_regression() {
        let base = baseline(&[("a", 100.0), ("b", 100.0)]);
        // Each stage just under its own limit, total over.
        let current = baseline(&[("a", 149.0), ("b", 160.0)]);
        let c = compare(&current, &base, 0.5);
        assert!(!c.rows[1].ok);
        assert!(!c.total_ok);
        assert!(!c.passed());
    }

    #[test]
    fn compare_fails_on_missing_stage() {
        let base = baseline(&[("a", 100.0)]);
        let current = baseline(&[("a", 100.0), ("new-stage", 5.0)]);
        let c = compare(&current, &base, 0.5);
        assert!(!c.passed());
        let json = c.to_json_value().to_string_pretty();
        assert!(json.contains("\"baseline_ms\": null"));
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(parsed.get("passed").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn compare_fails_on_stale_baseline_stage() {
        // The baseline records a stage the current build no longer
        // measures: every per-stage row passes, but the file is stale and
        // the gate must say so rather than silently ignoring the stage.
        let base = baseline(&[("a", 100.0), ("renamed-away", 50.0)]);
        let current = baseline(&[("a", 100.0)]);
        let c = compare(&current, &base, 0.5);
        assert!(c.rows.iter().all(|r| r.ok), "live rows are fine");
        assert_eq!(c.stale, vec!["renamed-away".to_string()]);
        assert!(!c.passed());
        let msgs = c.diagnostics();
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("renamed-away"), "{msgs:?}");
        assert!(msgs[0].contains("re-record"), "{msgs:?}");
        let table = c.to_table().to_ascii();
        assert!(table.contains("STALE"));
        let json = c.to_json_value().to_string_pretty();
        assert!(json.contains("\"stale_stages\""));
        assert!(json.contains("renamed-away"));
    }

    #[test]
    fn compare_fails_on_thread_count_mismatch() {
        let base = baseline(&[("a", 100.0)]);
        let mut current = baseline(&[("a", 100.0)]);
        current.threads = 8;
        let c = compare(&current, &base, 0.5);
        assert!(!c.threads_ok());
        assert!(!c.passed());
        let msgs = c.diagnostics();
        assert!(
            msgs.iter().any(|m| m.contains("MEMSENSE_THREADS=1")),
            "{msgs:?}"
        );
        let json = c.to_json_value().to_string_pretty();
        assert!(json.contains("\"baseline_threads\": 1"));
        assert!(json.contains("\"current_threads\": 8"));
    }

    #[test]
    fn matching_comparison_has_no_diagnostics() {
        let base = baseline(&[("a", 100.0)]);
        let c = compare(&base.clone(), &base, 0.5);
        assert!(c.passed());
        assert!(c.diagnostics().is_empty());
        assert!(c.stale.is_empty());
    }

    #[test]
    fn profile_table_lists_stage_work() {
        let b = baseline(&[("a", 12.5)]);
        let profiles = vec![StageProfile {
            name: "a".to_string(),
            ops: 1000,
            cache_accesses: 400,
            tlb_accesses: 0,
            prefetch_fills: 7,
        }];
        let t = profile_table(&b, &profiles).to_ascii();
        assert!(t.contains("cache_accesses"));
        assert!(t.contains("1000"));
        assert!(t.contains("12.5"));
    }

    #[test]
    fn stage_names_are_known() {
        // Every published stage must be runnable (guards against renames
        // leaving BENCH_sim.json stale).
        for s in STAGES {
            assert!(
                !matches!(run_stage_name_check(s), Err(SimBenchError::Stage(m)) if m.contains("unknown")),
                "stage {s} must be dispatchable"
            );
        }
        fn run_stage_name_check(name: &str) -> Result<(), SimBenchError> {
            if STAGES.contains(&name) {
                Ok(())
            } else {
                Err(SimBenchError::Stage(format!("unknown stage {name:?}")))
            }
        }
    }
}
