//! ASCII-table and CSV rendering for experiment output.
//!
//! Every reproduced table and figure renders two ways: an aligned ASCII
//! table for the terminal (what `repro` prints) and a CSV file under
//! `target/repro/` for plotting, so EXPERIMENTS.md numbers are regenerable.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its length should match the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned ASCII form.
    pub fn to_ascii(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if !first {
                    out.push_str("  ");
                }
                first = false;
                let _ = write!(out, "{:>width$}", cell, width = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV form to `dir/<name>.csv`, creating `dir` if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path, name: &str) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Default output directory for reproduction artifacts.
pub fn default_output_dir() -> PathBuf {
    PathBuf::from("target/repro")
}

/// Formats a float with `prec` decimals.
pub fn f(value: f64, prec: usize) -> String {
    format!("{value:.prec$}")
}

/// Formats a ratio as a percentage with `prec` decimals.
pub fn pct(value: f64, prec: usize) -> String {
    format!("{:.prec$}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Tab X", &["name", "value"]);
        t.row(vec!["alpha".into(), f(1.25, 2)]);
        t.row(vec!["b".into(), f(10.5, 1)]);
        t
    }

    #[test]
    fn ascii_aligns_columns() {
        let s = sample().to_ascii();
        assert!(s.contains("## Tab X"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains("name") && lines[1].contains("value"));
        assert!(lines[2].starts_with('-'));
        // Right-aligned cells share a column edge.
        let a = lines[3].rfind("1.25").unwrap() + 4;
        let b = lines[4].rfind("10.5").unwrap() + 4;
        assert_eq!(a, b);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["x,y".into(), "q\"z".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"z\""));
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("memsense_render_test");
        let path = sample().write_csv(&dir, "tabx").unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.starts_with("name,value"));
        assert!(text.contains("alpha,1.25"));
    }

    #[test]
    fn helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.1234, 1), "12.3%");
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
    }
}
