//! Terminal line plots for the reproduced figures.
//!
//! The `repro` binary draws each figure as an ASCII chart in addition to the
//! CSV, so the *shape* — the crossovers and knees the reproduction is about
//! — is visible without leaving the terminal.

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in any order; the plot sorts internally per x.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Marker characters assigned to series in order.
const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Renders an ASCII line chart of the series onto a `width × height` grid
/// with axis annotations. Returns an empty string when no series has points.
pub fn ascii_plot(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    width: usize,
    height: usize,
) -> String {
    let width = width.clamp(16, 200);
    let height = height.clamp(6, 60);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        return String::new();
    }
    let (mut x0, mut x1) = (f64::MAX, f64::MIN);
    let (mut y0, mut y1) = (f64::MAX, f64::MIN);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        let mut pts = s.points.clone();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Plot points plus linear interpolation between neighbours for a
        // line-chart feel.
        let to_cell = |x: f64, y: f64| -> (usize, usize) {
            let cx = ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let cy = ((y - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            (cx.min(width - 1), height - 1 - cy.min(height - 1))
        };
        for w in pts.windows(2) {
            let (ax, ay) = w[0];
            let (bx, by) = w[1];
            let steps = width.max(2);
            for k in 0..=steps {
                let t = k as f64 / steps as f64;
                let (cx, cy) = to_cell(ax + (bx - ax) * t, ay + (by - ay) * t);
                if grid[cy][cx] == ' ' {
                    grid[cy][cx] = '.';
                }
            }
        }
        for &(x, y) in &pts {
            let (cx, cy) = to_cell(x, y);
            grid[cy][cx] = mark;
        }
    }

    let mut out = String::new();
    if !title.is_empty() {
        let _ = writeln!(out, "{title}");
    }
    let y_hi = format!("{y1:.3}");
    let y_lo = format!("{y0:.3}");
    let margin = y_hi.len().max(y_lo.len()).max(y_label.len());
    for (r, row) in grid.iter().enumerate() {
        let tag = if r == 0 {
            &y_hi
        } else if r == height - 1 {
            &y_lo
        } else if r == height / 2 {
            y_label
        } else {
            ""
        };
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{tag:>margin$} |{line}");
    }
    let _ = writeln!(out, "{:>margin$} +{}", "", "-".repeat(width));
    let x_lo = format!("{x0:.2}");
    let x_hi = format!("{x1:.2}");
    let pad = width.saturating_sub(x_lo.len() + x_hi.len());
    let _ = writeln!(out, "{:>margin$}  {x_lo}{}{x_hi}", "", " ".repeat(pad));
    let _ = writeln!(out, "{:>margin$}  [x: {x_label}]", "");
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", MARKS[i % MARKS.len()], s.label))
        .collect();
    let _ = writeln!(out, "{:>margin$}  {}", "", legend.join("   "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines() -> Vec<Series> {
        vec![
            Series::new("up", vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]),
            Series::new("flat", vec![(0.0, 1.0), (2.0, 1.0)]),
        ]
    }

    #[test]
    fn plot_contains_marks_and_legend() {
        let p = ascii_plot("test", "x", "y", &lines(), 40, 10);
        assert!(p.contains('*'));
        assert!(p.contains('o'));
        assert!(p.contains("* up"));
        assert!(p.contains("o flat"));
        assert!(p.contains("test"));
        assert!(p.contains("[x: x]"));
    }

    #[test]
    fn plot_has_requested_dimensions() {
        let p = ascii_plot("", "x", "y", &lines(), 40, 10);
        let plot_rows = p.lines().filter(|l| l.contains('|')).count();
        assert_eq!(plot_rows, 10);
        let row = p.lines().find(|l| l.contains('|')).unwrap();
        assert_eq!(row.split('|').nth(1).unwrap().len(), 40);
    }

    #[test]
    fn rising_series_occupies_corners() {
        let s = vec![Series::new("up", vec![(0.0, 0.0), (1.0, 1.0)])];
        let p = ascii_plot("", "x", "y", &s, 20, 8);
        let rows: Vec<&str> = p.lines().filter(|l| l.contains('|')).collect();
        // Top row contains the high end, bottom row the low end.
        assert!(rows.first().unwrap().contains('*'));
        assert!(rows.last().unwrap().contains('*'));
    }

    #[test]
    fn empty_series_empty_output() {
        assert_eq!(ascii_plot("t", "x", "y", &[], 40, 10), "");
        let empty = vec![Series::new("none", vec![])];
        assert_eq!(ascii_plot("t", "x", "y", &empty, 40, 10), "");
    }

    #[test]
    fn constant_values_do_not_panic() {
        let s = vec![Series::new("const", vec![(1.0, 5.0), (1.0, 5.0)])];
        let p = ascii_plot("", "x", "y", &s, 30, 8);
        assert!(p.contains('*'));
    }

    #[test]
    fn axis_labels_rendered() {
        let p = ascii_plot("", "GB/s per core", "CPI", &lines(), 40, 11);
        assert!(p.contains("CPI"));
        assert!(p.contains("GB/s per core"));
    }
}
