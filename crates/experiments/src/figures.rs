//! Figure reproduction: Fig. 1 (trends), Fig. 7 (queueing calibration),
//! Figs. 8–11 + Tab. 7 (sensitivity application), and the Sec. VII
//! hierarchical-memory demonstration.

use memsense_mlc::{composite_queueing_curve, fig7_sweeps, LoadedLatencySweep};
use memsense_model::hierarchy::{break_even_near_hit, hierarchical_cpi, TieredMemory};
use memsense_model::queueing::QueueingCurve;
use memsense_model::sensitivity::{
    bandwidth_derivative, bandwidth_sweep, default_bandwidth_deltas, default_latency_steps,
    equivalence, latency_derivative, latency_sweep,
};
use memsense_model::system::SystemConfig;
use memsense_model::units::{GigaHertz, Nanoseconds};
use memsense_model::workload::WorkloadParams;

use crate::render::{f, pct, Table};
use crate::{executor, ExperimentError};

/// Runs one executor job per class, each producing a block of table rows;
/// blocks are concatenated in class order so the table is byte-identical to
/// the serial nested loop.
fn per_class_rows<F>(
    label: &str,
    classes: &[WorkloadParams],
    job: F,
) -> Result<Vec<Vec<String>>, ExperimentError>
where
    F: Fn(&WorkloadParams) -> Result<Vec<Vec<String>>, ExperimentError> + Sync,
{
    let blocks = executor::par_map_full(
        classes.iter().collect(),
        |_, class| format!("{label}/{}", class.name),
        job,
    )
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    Ok(blocks.into_iter().flatten().collect())
}

// ---------------------------------------------------------------------------
// Fig. 1 — CPU vs DRAM scaling trends
// ---------------------------------------------------------------------------

/// One year of the Fig. 1 backdrop: server core counts growing 33–50%/year
/// while DRAM density scaling lags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendPoint {
    /// Years since the baseline.
    pub year: u32,
    /// Relative compute capability (cores × clock), baseline = 1.
    pub cpu_capability: f64,
    /// Relative DRAM density, baseline = 1.
    pub dram_density: f64,
    /// Relative per-channel DDR bandwidth, baseline = 1.
    pub ddr_bandwidth: f64,
}

/// Generates the Fig. 1 trend series: cores grow ~40%/year, DRAM density
/// ~15%/year, per-channel bandwidth ~12%/year (the gap the intro motivates).
pub fn fig1_trends(years: u32) -> Vec<TrendPoint> {
    (0..=years)
        .map(|y| TrendPoint {
            year: y,
            cpu_capability: 1.40f64.powi(y as i32),
            dram_density: 1.15f64.powi(y as i32),
            ddr_bandwidth: 1.12f64.powi(y as i32),
        })
        .collect()
}

/// Renders Fig. 1.
pub fn fig1_table(years: u32) -> Table {
    let mut t = Table::new(
        "Fig. 1: CPU vs DRAM scaling trends (relative to year 0)",
        &[
            "year",
            "cpu_capability",
            "dram_density",
            "ddr_bw_per_channel",
            "gap",
        ],
    );
    for p in fig1_trends(years) {
        t.row(vec![
            p.year.to_string(),
            f(p.cpu_capability, 2),
            f(p.dram_density, 2),
            f(p.ddr_bandwidth, 2),
            f(p.cpu_capability / p.dram_density, 2),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Fig. 7 — queueing delay vs bandwidth utilization
// ---------------------------------------------------------------------------

/// The Fig. 7 experiment output: four measured sweeps plus the composite
/// queueing curve.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// The four speed/mix sweeps.
    pub sweeps: Vec<LoadedLatencySweep>,
    /// The composite curve the model consumes.
    pub composite: QueueingCurve,
}

/// Runs the Fig. 7 calibration on the simulated memory controller.
///
/// # Errors
///
/// Propagates curve-construction failures.
pub fn fig7() -> Result<Fig7, ExperimentError> {
    let sweeps = fig7_sweeps();
    let composite = composite_queueing_curve(&sweeps)?;
    Ok(Fig7 { sweeps, composite })
}

/// Renders Fig. 7 as (utilization, delay) rows per sweep plus the composite.
pub fn fig7_table(fig: &Fig7) -> Table {
    let mut t = Table::new(
        "Fig. 7: queueing delay vs bandwidth utilization",
        &["series", "utilization", "queueing_delay_ns"],
    );
    for sweep in &fig.sweeps {
        for (u, d) in sweep.queueing_points() {
            t.row(vec![sweep.label.clone(), f(u, 3), f(d, 1)]);
        }
    }
    for &(u, d) in fig.composite.knots() {
        t.row(vec!["composite".to_string(), f(u, 3), f(d, 1)]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figs. 8–11 + Tab. 7 — sensitivity application
// ---------------------------------------------------------------------------

/// Workload classes used for the sensitivity study. `paper` selects the
/// published Tab. 6 constants; otherwise caller-provided (e.g. calibrated)
/// classes are used.
pub fn paper_classes() -> Vec<WorkloadParams> {
    WorkloadParams::all_classes()
}

/// Fig. 8: CPI increase vs per-core bandwidth reduction for each class.
///
/// # Errors
///
/// Propagates solver failures.
pub fn fig8_table(
    classes: &[WorkloadParams],
    system: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<Table, ExperimentError> {
    let mut t = Table::new(
        "Fig. 8: CPI increase vs per-core bandwidth reduction",
        &[
            "class",
            "delta_gbps_per_core",
            "bw_per_core",
            "cpi",
            "cpi_increase",
            "regime",
        ],
    );
    for row in per_class_rows("fig8", classes, |class| {
        let sweep = bandwidth_sweep(class, system, curve, &default_bandwidth_deltas())?;
        Ok(sweep
            .iter()
            .map(|p| {
                vec![
                    class.name.clone(),
                    f(p.delta, 1),
                    f(p.bandwidth_per_core, 2),
                    f(p.solved.cpi_eff, 3),
                    pct(p.cpi_ratio - 1.0, 1),
                    p.solved.regime.to_string(),
                ]
            })
            .collect())
    })? {
        t.row(row);
    }
    Ok(t)
}

/// Fig. 9: marginal CPI impact per GB/s/core vs available bandwidth.
///
/// # Errors
///
/// Propagates solver failures.
pub fn fig9_table(
    classes: &[WorkloadParams],
    system: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<Table, ExperimentError> {
    let mut t = Table::new(
        "Fig. 9: CPI impact per GB/s/core removed vs available bandwidth per core",
        &["class", "bw_per_core", "pct_cpi_per_gbps"],
    );
    for row in per_class_rows("fig9", classes, |class| {
        let sweep = bandwidth_sweep(class, system, curve, &default_bandwidth_deltas())?;
        Ok(bandwidth_derivative(&sweep)?
            .into_iter()
            .map(|d| vec![class.name.clone(), f(d.at, 2), f(d.pct_per_unit, 2)])
            .collect())
    })? {
        t.row(row);
    }
    Ok(t)
}

/// Fig. 10: CPI vs added compulsory latency.
///
/// # Errors
///
/// Propagates solver failures.
pub fn fig10_table(
    classes: &[WorkloadParams],
    system: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<Table, ExperimentError> {
    let mut t = Table::new(
        "Fig. 10: CPI vs compulsory latency increase",
        &[
            "class",
            "added_ns",
            "latency_ns",
            "cpi",
            "cpi_increase",
            "regime",
        ],
    );
    for row in per_class_rows("fig10", classes, |class| {
        let sweep = latency_sweep(class, system, curve, &default_latency_steps())?;
        Ok(sweep
            .iter()
            .map(|p| {
                vec![
                    class.name.clone(),
                    f(p.delta, 0),
                    f(p.unloaded_latency_ns, 0),
                    f(p.solved.cpi_eff, 3),
                    pct(p.cpi_ratio - 1.0, 1),
                    p.solved.regime.to_string(),
                ]
            })
            .collect())
    })? {
        t.row(row);
    }
    Ok(t)
}

/// Fig. 11: CPI impact per +10 ns step.
///
/// # Errors
///
/// Propagates solver failures.
pub fn fig11_table(
    classes: &[WorkloadParams],
    system: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<Table, ExperimentError> {
    let mut t = Table::new(
        "Fig. 11: CPI impact per 10 ns of added compulsory latency",
        &["class", "at_latency_ns", "pct_cpi_per_10ns"],
    );
    for row in per_class_rows("fig11", classes, |class| {
        let sweep = latency_sweep(class, system, curve, &default_latency_steps())?;
        Ok(latency_derivative(&sweep)?
            .into_iter()
            .map(|d| vec![class.name.clone(), f(d.at, 0), f(d.pct_per_unit, 2)])
            .collect())
    })? {
        t.row(row);
    }
    Ok(t)
}

/// Tab. 7: latency ⇄ bandwidth equivalence per class.
///
/// # Errors
///
/// Propagates solver failures.
pub fn tab7_table(
    classes: &[WorkloadParams],
    system: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<Table, ExperimentError> {
    let mut t = Table::new(
        "Tab. 7: performance equivalence of bandwidth and latency",
        &[
            "class",
            "benefit_of_1GBs_per_core",
            "benefit_of_10ns",
            "10ns_equals_GBs",
            "8GBs_equals_ns",
        ],
    );
    for row in per_class_rows("tab7", classes, |class| {
        let e = equivalence(class, system, curve)?;
        Ok(vec![vec![
            class.name.clone(),
            pct(e.benefit_of_bandwidth_pct / 100.0, 1),
            pct(e.benefit_of_latency_pct / 100.0, 1),
            e.bandwidth_equivalent_of_10ns
                .map(|v| f(v, 1))
                .unwrap_or_else(|| "unbounded".into()),
            e.latency_equivalent_of_bandwidth
                .map(|v| f(v, 1))
                .unwrap_or_else(|| "unreachable".into()),
        ]])
    })? {
        t.row(row);
    }
    Ok(t)
}

// ---------------------------------------------------------------------------
// Sec. VII — hierarchical memory demonstration
// ---------------------------------------------------------------------------

/// Renders the Eq. 5 tiered-memory exploration: CPI of a near/far hierarchy
/// across near-tier hit rates, with the break-even hit rate per class.
///
/// # Errors
///
/// Propagates model validation failures.
pub fn hierarchy_table(
    classes: &[WorkloadParams],
    near: Nanoseconds,
    far: Nanoseconds,
    flat: Nanoseconds,
    clock: GigaHertz,
) -> Result<Table, ExperimentError> {
    let mut t = Table::new(
        format!(
            "Eq. 5: two-tier memory (near {:.0} ns, far {:.0} ns) vs flat {:.0} ns",
            near.value(),
            far.value(),
            flat.value()
        ),
        &["class", "near_hit", "cpi", "flat_cpi", "break_even_hit"],
    );
    for row in per_class_rows("hierarchy", classes, |class| {
        let flat_cpi = hierarchical_cpi(class, &TieredMemory::flat(flat)?, clock);
        let break_even = break_even_near_hit(class, near, far, flat, clock)?;
        let mut rows = Vec::new();
        for hit in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let mem = TieredMemory::two_tier(hit, near, far)?;
            rows.push(vec![
                class.name.clone(),
                f(hit, 2),
                f(hierarchical_cpi(class, &mem, clock), 3),
                f(flat_cpi, 3),
                break_even
                    .map(|h| f(h, 3))
                    .unwrap_or_else(|| "unreachable".into()),
            ]);
        }
        Ok(rows)
    })? {
        t.row(row);
    }
    Ok(t)
}

// ---------------------------------------------------------------------------
// Extensions: future memory technologies and NUMA (Secs. VII–VIII)
// ---------------------------------------------------------------------------

/// A candidate memory technology for the Sec. VII exploration.
#[derive(Debug, Clone)]
pub struct MemoryTechnology {
    /// Display name.
    pub name: &'static str,
    /// Channels on the baseline socket.
    pub channels: u32,
    /// Transfer rate (MT/s-equivalent for an 8-byte channel).
    pub mega_transfers: f64,
    /// Deliverable fraction of peak.
    pub efficiency: f64,
    /// Compulsory load latency (ns).
    pub unloaded_ns: f64,
}

/// A representative slate of memory technologies, from the paper's DDR3
/// baseline through bandwidth-optimized (HBM-like) and capacity-optimized
/// (NVM-like) designs.
pub fn technology_slate() -> Vec<MemoryTechnology> {
    vec![
        MemoryTechnology {
            name: "4ch DDR3-1867 (baseline)",
            channels: 4,
            mega_transfers: 1866.7,
            efficiency: 0.70,
            unloaded_ns: 75.0,
        },
        MemoryTechnology {
            name: "4ch DDR4-2400",
            channels: 4,
            mega_transfers: 2400.0,
            efficiency: 0.72,
            unloaded_ns: 80.0,
        },
        MemoryTechnology {
            name: "6ch DDR4-2933",
            channels: 6,
            mega_transfers: 2933.0,
            efficiency: 0.72,
            unloaded_ns: 82.0,
        },
        MemoryTechnology {
            name: "8ch DDR5-4800",
            channels: 8,
            mega_transfers: 4800.0,
            efficiency: 0.65,
            unloaded_ns: 95.0,
        },
        MemoryTechnology {
            name: "HBM-like (wide, near)",
            channels: 16,
            mega_transfers: 3200.0,
            efficiency: 0.60,
            unloaded_ns: 60.0,
        },
        MemoryTechnology {
            name: "NVM-like (capacity)",
            channels: 4,
            mega_transfers: 1600.0,
            efficiency: 0.55,
            unloaded_ns: 350.0,
        },
    ]
}

/// Sec. VII applied: CPI of each workload class on each candidate memory
/// technology, normalized to the DDR3 baseline.
///
/// # Errors
///
/// Propagates model failures.
pub fn future_tech_table(
    classes: &[WorkloadParams],
    curve: &QueueingCurve,
) -> Result<Table, ExperimentError> {
    use memsense_model::solver::solve_cpi;
    let baseline = SystemConfig::paper_baseline();
    let mut t = Table::new(
        "Future memory technologies: CPI per class (normalized to DDR3 baseline)",
        &[
            "technology",
            "eff_bw_gbps",
            "latency_ns",
            "Enterprise",
            "Big Data",
            "HPC",
        ],
    );
    let base_cpis: Vec<f64> = classes
        .iter()
        .map(|c| solve_cpi(c, &baseline, curve).map(|s| s.cpi_eff))
        .collect::<Result<_, _>>()?;
    // One executor job per candidate technology, in slate order.
    let rows = executor::par_map_full(
        technology_slate(),
        |_, tech| format!("futuretech/{}", tech.name),
        |tech| -> Result<Vec<String>, ExperimentError> {
            let sys = SystemConfig::new(
                1,
                8,
                2,
                baseline.core_clock(),
                tech.channels,
                tech.mega_transfers,
                tech.efficiency,
                Nanoseconds(tech.unloaded_ns),
            )?;
            let mut row = vec![
                tech.name.to_string(),
                f(sys.effective_bandwidth().value(), 1),
                f(tech.unloaded_ns, 0),
            ];
            for (class, base) in classes.iter().zip(&base_cpis) {
                let cpi = solve_cpi(class, &sys, curve)?.cpi_eff;
                row.push(f(cpi / base, 3));
            }
            Ok(row)
        },
    )
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    for row in rows {
        t.row(row);
    }
    Ok(t)
}

/// Sec. VIII applied: NUMA penalty per class for a range of remote-access
/// fractions on a dual-socket platform.
///
/// # Errors
///
/// Propagates model failures.
pub fn numa_table(
    classes: &[WorkloadParams],
    curve: &QueueingCurve,
) -> Result<Table, ExperimentError> {
    use memsense_model::numa::{numa_penalty, NumaConfig};
    let sys = SystemConfig::characterization_platform();
    let mut t = Table::new(
        "NUMA: CPI penalty vs remote-access fraction (2S, 60 ns hop)",
        &["class", "remote_10pct", "remote_25pct", "remote_50pct"],
    );
    for row in per_class_rows("numa", classes, |class| {
        let mut row = vec![class.name.clone()];
        for frac in [0.10, 0.25, 0.50] {
            let p = numa_penalty(
                class,
                &sys,
                curve,
                &NumaConfig::new(frac, Nanoseconds(60.0))?,
            )?;
            row.push(pct(p - 1.0, 1));
        }
        Ok(vec![row])
    })? {
        t.row(row);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_gap_widens() {
        let trends = fig1_trends(8);
        assert_eq!(trends.len(), 9);
        let gap0 = trends[0].cpu_capability / trends[0].dram_density;
        let gap8 = trends[8].cpu_capability / trends[8].dram_density;
        assert_eq!(gap0, 1.0);
        assert!(gap8 > 4.0, "gap after 8 years: {gap8}");
        assert_eq!(fig1_table(8).len(), 9);
    }

    #[test]
    fn fig7_composite_matches_paper_shape() {
        let fig = fig7().unwrap();
        assert_eq!(fig.sweeps.len(), 4);
        // Below ~95% utilization the four curves coincide: spread at u=0.6
        // is small relative to the delay scale.
        let delays: Vec<f64> = fig
            .sweeps
            .iter()
            .filter_map(|s| s.to_queueing_curve().ok())
            .map(|c| c.delay(0.6).value())
            .collect();
        assert_eq!(delays.len(), 4);
        let max = delays.iter().cloned().fold(f64::MIN, f64::max);
        let min = delays.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min.max(1.0) < 3.0,
            "curves should roughly coincide: spread {min}..{max}"
        );
        // Composite hockey-sticks upward.
        assert!(
            fig.composite.delay(0.95).value() > fig.composite.delay(0.5).value() * 1.5,
            "knee missing: {} vs {}",
            fig.composite.delay(0.95).value(),
            fig.composite.delay(0.5).value()
        );
    }

    #[test]
    fn sensitivity_tables_render_for_paper_classes() {
        let classes = paper_classes();
        let sys = SystemConfig::paper_baseline();
        let curve = QueueingCurve::composite_default();
        let f8 = fig8_table(&classes, &sys, &curve).unwrap();
        assert_eq!(f8.len(), 3 * default_bandwidth_deltas().len());
        let f9 = fig9_table(&classes, &sys, &curve).unwrap();
        assert_eq!(f9.len(), 3 * (default_bandwidth_deltas().len() - 1));
        let f10 = fig10_table(&classes, &sys, &curve).unwrap();
        assert_eq!(f10.len(), 3 * default_latency_steps().len());
        let f11 = fig11_table(&classes, &sys, &curve).unwrap();
        assert_eq!(f11.len(), 3 * (default_latency_steps().len() - 1));
        let t7 = tab7_table(&classes, &sys, &curve).unwrap();
        assert_eq!(t7.len(), 3);
        assert!(
            t7.to_ascii().contains("unreachable"),
            "HPC latency equivalence"
        );
    }

    #[test]
    fn hierarchy_table_break_even_present() {
        let classes = paper_classes();
        let t = hierarchy_table(
            &classes,
            Nanoseconds(50.0),
            Nanoseconds(300.0),
            Nanoseconds(75.0),
            GigaHertz(2.7),
        )
        .unwrap();
        assert_eq!(t.len(), 3 * 6);
        let ascii = t.to_ascii();
        assert!(ascii.contains("break_even_hit"));
    }

    #[test]
    fn future_tech_table_shapes() {
        let classes = paper_classes();
        let curve = QueueingCurve::composite_default();
        let t = future_tech_table(&classes, &curve).unwrap();
        assert_eq!(t.len(), technology_slate().len());
        let csv = t.to_csv();
        // HBM-like frees the HPC class (normalized CPI well below 1);
        // NVM-like slows latency-bound classes well above 1.
        let hbm = csv.lines().find(|l| l.contains("HBM")).unwrap();
        let hpc_ratio: f64 = hbm.split(',').next_back().unwrap().parse().unwrap();
        assert!(hpc_ratio < 0.7, "HBM frees HPC: {hpc_ratio}");
        let nvm = csv.lines().find(|l| l.contains("NVM")).unwrap();
        let ent_ratio: f64 = nvm.split(',').nth(3).unwrap().parse().unwrap();
        assert!(ent_ratio > 1.5, "NVM hurts enterprise: {ent_ratio}");
    }

    #[test]
    fn numa_table_shapes() {
        let classes = paper_classes();
        let curve = QueueingCurve::composite_default();
        let t = numa_table(&classes, &curve).unwrap();
        assert_eq!(t.len(), 3);
        let ascii = t.to_ascii();
        assert!(ascii.contains("remote_50pct"));
        // HPC row shows ~0% penalties.
        let hpc_line = ascii.lines().find(|l| l.contains("HPC")).unwrap();
        assert!(hpc_line.contains("0.0%"), "{hpc_line}");
    }

    #[test]
    fn fig7_backed_sensitivity_agrees_with_default_curve() {
        // Using the MLC-measured composite instead of the built-in curve
        // must preserve the headline class ordering.
        let fig = fig7().unwrap();
        let sys = SystemConfig::paper_baseline();
        let classes = paper_classes();
        let t = tab7_table(&classes, &sys, &fig.composite).unwrap();
        let ascii = t.to_ascii();
        assert!(ascii.contains("HPC class"));
        let hpc_line = ascii.lines().find(|l| l.contains("HPC class")).unwrap();
        assert!(hpc_line.contains("unreachable"));
    }
}
