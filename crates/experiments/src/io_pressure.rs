//! Workload performance under background I/O pressure.
//!
//! The paper observes that NITS drives >2 GB/s of storage traffic yet "the
//! I/O bandwidth is still relatively small when compared to the total memory
//! bandwidth" (Sec. V.D). This experiment makes the underlying question
//! measurable: how much does device DMA of a given rate slow each workload?
//! Background agents inject traffic directly into the memory controller,
//! independent of instruction progress.

use memsense_sim::{Machine, SimConfig};
use memsense_workloads::{Class, Workload};

use crate::executor::par_map_full;
use crate::render::{f, pct, Table};
use crate::ExperimentError;

/// DMA rates explored (GB/s).
pub const DMA_RATES: [f64; 4] = [0.0, 5.0, 10.0, 20.0];

/// One measurement: a workload under a given DMA rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoPressurePoint {
    /// Background DMA rate (GB/s).
    pub dma_gbps: f64,
    /// Measured CPI.
    pub cpi: f64,
    /// Measured total memory bandwidth (workload + DMA).
    pub total_bandwidth_gbps: f64,
}

/// Simulates one (workload, DMA rate) cell on a fresh machine.
fn measure_point(
    workload: Workload,
    threads: u32,
    warmup_ops: u64,
    window_ns: f64,
    rate: f64,
) -> Result<IoPressurePoint, ExperimentError> {
    let config = SimConfig::xeon_like(threads);
    let mut machine = Machine::new(config, workload.streams(threads, 0x10ad))?;
    machine.run_ops(warmup_ops);
    if rate > 0.0 {
        machine.add_background_traffic(rate, 0.5, 0);
    }
    let m = machine
        .measure_for_ns(window_ns)
        .ok_or(ExperimentError::NoData)?;
    Ok(IoPressurePoint {
        dma_gbps: rate,
        cpi: m.cpi_eff,
        total_bandwidth_gbps: m.bandwidth_gbps,
    })
}

/// Measures `workload` under each DMA rate.
///
/// Every rate is an independent simulation (its own freshly seeded
/// machine), so the cells run as parallel executor jobs; results are
/// reassembled in [`DMA_RATES`] order, making the output byte-identical at
/// any `MEMSENSE_THREADS`.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn io_pressure(
    workload: Workload,
    threads: u32,
    warmup_ops: u64,
    window_ns: f64,
) -> Result<Vec<IoPressurePoint>, ExperimentError> {
    par_map_full(
        DMA_RATES.to_vec(),
        |_, rate| format!("io_pressure/{} @ {rate:.0} GB/s", workload.name()),
        |rate| measure_point(workload, threads, warmup_ops, window_ns, rate),
    )
    .into_iter()
    .collect()
}

/// Renders the experiment for the big data workloads (the class the paper's
/// I/O discussion concerns).
///
/// # Errors
///
/// Propagates measurement failures.
pub fn io_pressure_table(
    threads: u32,
    warmup_ops: u64,
    window_ns: f64,
) -> Result<Table, ExperimentError> {
    let mut t = Table::new(
        "Background DMA pressure: big data CPI vs device traffic",
        &[
            "workload",
            "dma_gbps",
            "cpi",
            "cpi_increase",
            "total_bw_gbps",
        ],
    );
    // All (workload × rate) cells are independent machines: fan the full
    // 16-cell grid out as one batch of executor jobs and reassemble in
    // submission order, so the rendered table is byte-identical at any
    // `MEMSENSE_THREADS`.
    let workloads: Vec<Workload> = Workload::all()
        .into_iter()
        .filter(|w| w.class() == Class::BigData)
        .collect();
    let cells: Vec<(Workload, f64)> = workloads
        .iter()
        .flat_map(|&w| DMA_RATES.iter().map(move |&r| (w, r)))
        .collect();
    let points = par_map_full(
        cells,
        |_, (w, rate)| format!("io_pressure/{} @ {rate:.0} GB/s", w.name()),
        |(w, rate)| measure_point(w, threads, warmup_ops, window_ns, rate),
    )
    .into_iter()
    .collect::<Result<Vec<IoPressurePoint>, ExperimentError>>()?;
    for (wi, w) in workloads.iter().enumerate() {
        let row = &points[wi * DMA_RATES.len()..(wi + 1) * DMA_RATES.len()];
        let base = row[0].cpi;
        for p in row {
            t.row(vec![
                w.name().to_string(),
                f(p.dma_gbps, 0),
                f(p.cpi, 3),
                pct(p.cpi / base - 1.0, 1),
                f(p.total_bandwidth_gbps, 1),
            ]);
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_pressure_monotonically_slows_structured_data() {
        let points = io_pressure(Workload::StructuredData, 4, 40_000, 60_000.0).unwrap();
        assert_eq!(points.len(), DMA_RATES.len());
        for w in points.windows(2) {
            assert!(
                w[1].cpi >= w[0].cpi - 0.01,
                "more DMA, more CPI: {} then {}",
                w[0].cpi,
                w[1].cpi
            );
            assert!(w[1].total_bandwidth_gbps > w[0].total_bandwidth_gbps);
        }
        let worst = points.last().unwrap();
        assert!(
            worst.cpi > points[0].cpi * 1.02,
            "20 GB/s of DMA must be visible: {} vs {}",
            worst.cpi,
            points[0].cpi
        );
    }

    #[test]
    fn core_bound_proximity_barely_notices() {
        let prox = io_pressure(Workload::Proximity, 4, 40_000, 60_000.0).unwrap();
        let penalty = prox.last().unwrap().cpi / prox[0].cpi;
        assert!(
            penalty < 1.05,
            "core-bound workload shrugs off DMA: {penalty}"
        );
    }

    #[test]
    fn table_renders_sixteen_rows() {
        let t = io_pressure_table(2, 25_000, 40_000.0).unwrap();
        assert_eq!(t.len(), 4 * DMA_RATES.len());
        assert!(t.to_ascii().contains("dma_gbps"));
    }
}
