//! Workload classification (paper Fig. 6 / Tab. 6 / Sec. VI.B).
//!
//! Each calibrated workload becomes a point in the plane of latency
//! sensitivity (blocking factor, x-axis) versus intrinsic bandwidth demand
//! (memory reads + writebacks per cycle at `CPI_cache`, y-axis). The paper
//! groups points by usage segment, averages each segment into a class mean,
//! and pulls core-bound workloads (proximity, some SPEC components) out into
//! their own cluster near the origin. An unsupervised k-means pass confirms
//! the segments really form distinct clusters.

use memsense_model::workload::WorkloadParams;
use memsense_stats::kmeans;
use memsense_workloads::Class;

use crate::calibrate::CalibratedWorkload;
use crate::render::{f, pct, Table};
use crate::ExperimentError;

/// A workload's position in the Fig. 6 plane.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassPoint {
    /// Workload name.
    pub name: String,
    /// Usage segment.
    pub class: Class,
    /// Latency sensitivity: the blocking factor.
    pub bf: f64,
    /// Bandwidth demand: memory references per cycle at `CPI_cache`.
    pub refs_per_cycle: f64,
    /// Whether the workload is core bound (excluded from class means, as the
    /// paper omits proximity from Tab. 6).
    pub core_bound: bool,
}

/// Threshold below which a workload's memory term marks it core bound:
/// `MPI × (1+WBR) / CPI_cache` and BF both tiny.
const CORE_BOUND_BF: f64 = 0.08;
const CORE_BOUND_REFS: f64 = 0.002;

/// Builds Fig. 6 points from calibrated workloads.
///
/// # Errors
///
/// Propagates parameter-conversion failures.
pub fn class_points(
    calibrations: &[CalibratedWorkload],
) -> Result<Vec<ClassPoint>, ExperimentError> {
    calibrations
        .iter()
        .map(|c| {
            let params = c.to_params()?;
            let refs = params.refs_per_cycle().value();
            let bf = c.bf.max(0.0);
            Ok(ClassPoint {
                name: c.workload.name().to_string(),
                class: c.workload.class(),
                bf,
                refs_per_cycle: refs,
                core_bound: bf < CORE_BOUND_BF && refs < CORE_BOUND_REFS,
            })
        })
        .collect()
}

/// Class means over non-core-bound members (the red points of Fig. 6 and
/// the rows of Tab. 6).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMean {
    /// Usage segment.
    pub class: Class,
    /// Mean CPI_cache.
    pub cpi_cache: f64,
    /// Mean blocking factor.
    pub bf: f64,
    /// Mean MPKI.
    pub mpki: f64,
    /// Mean writeback rate.
    pub wbr: f64,
    /// Members averaged.
    pub members: usize,
}

impl ClassMean {
    /// Converts the mean into analytic-model class parameters.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation.
    pub fn to_params(&self) -> Result<WorkloadParams, memsense_model::ModelError> {
        let (name, segment) = match self.class {
            Class::BigData => ("Big Data class", memsense_model::Segment::BigData),
            Class::Enterprise => ("Enterprise class", memsense_model::Segment::Enterprise),
            Class::Hpc => ("HPC class", memsense_model::Segment::Hpc),
        };
        WorkloadParams::new(
            name,
            segment,
            self.cpi_cache,
            self.bf.max(0.0),
            self.mpki,
            self.wbr,
        )
    }
}

/// Computes per-class means, excluding core-bound members.
///
/// # Errors
///
/// Propagates point-construction failures.
pub fn class_means(calibrations: &[CalibratedWorkload]) -> Result<Vec<ClassMean>, ExperimentError> {
    let points = class_points(calibrations)?;
    let mut out = Vec::new();
    for class in [Class::Enterprise, Class::BigData, Class::Hpc] {
        let members: Vec<&CalibratedWorkload> = calibrations
            .iter()
            .zip(&points)
            .filter(|(c, p)| c.workload.class() == class && !p.core_bound)
            .map(|(c, _)| c)
            .collect();
        if members.is_empty() {
            continue;
        }
        let n = members.len() as f64;
        out.push(ClassMean {
            class,
            cpi_cache: members.iter().map(|m| m.cpi_cache).sum::<f64>() / n,
            bf: members.iter().map(|m| m.bf).sum::<f64>() / n,
            mpki: members.iter().map(|m| m.mpki).sum::<f64>() / n,
            wbr: members.iter().map(|m| m.wbr).sum::<f64>() / n,
            members: members.len(),
        })
    }
    Ok(out)
}

/// Unsupervised check that the (BF, refs/cycle) plane separates the
/// segments: k-means with k=3 over non-core-bound points, returning the
/// fraction of points whose cluster agrees with the majority cluster of
/// their segment.
///
/// # Errors
///
/// Propagates point-construction failures or degenerate clustering input.
pub fn clustering_agreement(calibrations: &[CalibratedWorkload]) -> Result<f64, ExperimentError> {
    let points = class_points(calibrations)?;
    let active: Vec<&ClassPoint> = points.iter().filter(|p| !p.core_bound).collect();
    if active.len() < 3 {
        return Err(ExperimentError::NoData);
    }
    // Normalize both axes to comparable scale before clustering.
    let max_bf = active
        .iter()
        .map(|p| p.bf)
        .fold(f64::MIN, f64::max)
        .max(1e-9);
    let max_refs = active
        .iter()
        .map(|p| p.refs_per_cycle)
        .fold(f64::MIN, f64::max)
        .max(1e-9);
    let data: Vec<Vec<f64>> = active
        .iter()
        .map(|p| vec![p.bf / max_bf, p.refs_per_cycle / max_refs])
        .collect();
    let clustering = kmeans(&data, 3, 100).map_err(|_| ExperimentError::NoData)?;

    let mut agree = 0usize;
    for class in [Class::Enterprise, Class::BigData, Class::Hpc] {
        let assignments: Vec<usize> = active
            .iter()
            .zip(&clustering.assignments)
            .filter(|(p, _)| p.class == class)
            .map(|(_, &a)| a)
            .collect();
        if assignments.is_empty() {
            continue;
        }
        let mut counts = [0usize; 16];
        for &a in &assignments {
            counts[a] += 1;
        }
        agree += counts.iter().max().copied().unwrap_or(0);
    }
    Ok(agree as f64 / active.len() as f64)
}

/// Renders Fig. 6 as a table of points plus class means.
///
/// # Errors
///
/// Propagates point and mean construction failures.
pub fn fig6_table(calibrations: &[CalibratedWorkload]) -> Result<Table, ExperimentError> {
    let points = class_points(calibrations)?;
    let means = class_means(calibrations)?;
    let mut t = Table::new(
        "Fig. 6: bandwidth demand vs latency sensitivity",
        &["workload", "class", "BF", "refs_per_cycle", "core_bound"],
    );
    for p in &points {
        t.row(vec![
            p.name.clone(),
            format!("{:?}", p.class),
            f(p.bf, 3),
            f(p.refs_per_cycle, 4),
            if p.core_bound { "yes" } else { "no" }.to_string(),
        ]);
    }
    for m in &means {
        t.row(vec![
            format!("MEAN {:?}", m.class),
            format!("{:?}", m.class),
            f(m.bf, 3),
            f(m.mpki / 1000.0 * (1.0 + m.wbr) / m.cpi_cache, 4),
            "no".to_string(),
        ]);
    }
    Ok(t)
}

/// Renders Tab. 6 (class means).
///
/// # Errors
///
/// Propagates mean construction failures.
pub fn tab6_table(calibrations: &[CalibratedWorkload]) -> Result<Table, ExperimentError> {
    let means = class_means(calibrations)?;
    let mut t = Table::new(
        "Tab. 6: workload class parameters (measured)",
        &["class", "CPI_cache", "BF", "MPKI", "WBR", "members"],
    );
    for m in &means {
        t.row(vec![
            format!("{:?}", m.class),
            f(m.cpi_cache, 2),
            f(m.bf, 2),
            f(m.mpki, 1),
            pct(m.wbr, 0),
            m.members.to_string(),
        ]);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::{calibrate_all, CalibrationBudget};
    use std::sync::OnceLock;

    fn cals() -> &'static Vec<CalibratedWorkload> {
        static CACHE: OnceLock<Vec<CalibratedWorkload>> = OnceLock::new();
        CACHE.get_or_init(|| calibrate_all(&CalibrationBudget::quick()).unwrap())
    }

    #[test]
    fn fourteen_points_with_core_bound_cluster() {
        let points = class_points(cals()).unwrap();
        assert_eq!(points.len(), 14);
        // The Fig. 6 origin cluster: proximity plus the two core-bound SPEC
        // components.
        for name in ["Proximity", "povray", "perlbench"] {
            let p = points.iter().find(|p| p.name == name).unwrap();
            assert!(p.core_bound, "{name} must be core bound: {p:?}");
        }
        // The eleven modeled workloads are not core bound.
        assert_eq!(points.iter().filter(|p| !p.core_bound).count(), 11);
    }

    #[test]
    fn fig6_ordering_matches_paper() {
        let means = class_means(cals()).unwrap();
        assert_eq!(means.len(), 3);
        let get = |c: Class| means.iter().find(|m| m.class == c).unwrap();
        let ent = get(Class::Enterprise);
        let big = get(Class::BigData);
        let hpc = get(Class::Hpc);
        // Enterprise most latency sensitive; HPC least.
        assert!(ent.bf > big.bf, "ent BF {} > big {}", ent.bf, big.bf);
        assert!(big.bf > hpc.bf, "big BF {} > hpc {}", big.bf, hpc.bf);
        // HPC demands the most bandwidth per cycle.
        let refs = |m: &ClassMean| m.mpki / 1000.0 * (1.0 + m.wbr) / m.cpi_cache;
        assert!(refs(hpc) > refs(big), "{} > {}", refs(hpc), refs(big));
        assert!(refs(big) > refs(ent) * 0.8, "big data >= enterprise-ish");
    }

    #[test]
    fn measured_class_means_near_paper_tab6() {
        let means = class_means(cals()).unwrap();
        let get = |c: Class| means.iter().find(|m| m.class == c).unwrap();
        let ent = get(Class::Enterprise);
        assert!(
            (ent.cpi_cache - 1.47).abs() < 0.5,
            "ent CPI_cache {}",
            ent.cpi_cache
        );
        assert!((ent.bf - 0.41).abs() < 0.15, "ent BF {}", ent.bf);
        assert!((ent.mpki - 6.7).abs() < 2.0, "ent MPKI {}", ent.mpki);
        let hpc = get(Class::Hpc);
        assert!((hpc.bf - 0.07).abs() < 0.08, "hpc BF {}", hpc.bf);
        assert!((hpc.mpki - 26.7).abs() < 8.0, "hpc MPKI {}", hpc.mpki);
        let big = get(Class::BigData);
        assert!((big.bf - 0.21).abs() < 0.10, "big BF {}", big.bf);
    }

    #[test]
    fn clusters_agree_with_segments() {
        let agreement = clustering_agreement(cals()).unwrap();
        assert!(
            agreement > 0.7,
            "k-means should broadly recover the segments: {agreement}"
        );
    }

    #[test]
    fn tables_render() {
        let fig6 = fig6_table(cals()).unwrap();
        assert!(fig6.len() >= 17, "14 points + 3 means");
        let tab6 = tab6_table(cals()).unwrap();
        assert_eq!(tab6.len(), 3);
        assert!(tab6.to_ascii().contains("BigData"));
    }

    #[test]
    fn class_mean_params_convert() {
        for m in class_means(cals()).unwrap() {
            let p = m.to_params().unwrap();
            assert!(p.cpi_cache > 0.0);
        }
    }
}
