//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Constant blocking factor** (paper Sec. IV.B assumes `BF` constant
//!    across miss penalties): compare per-point implied BF against the
//!    fitted constant.
//! 2. **Composite queueing curve** (the paper averages four measured
//!    curves): compare solver output under the composite, a single-mix
//!    curve, and an analytic M/M/1 curve.
//! 3. **Prefetching** (Sec. VII: a better prefetcher lowers BF): calibrate
//!    with the prefetcher disabled and measure the BF increase.
//! 4. **Constant pathlength** (Sec. IV.A): verify the coefficient of
//!    variation of instructions-per-unit-of-work across the frequency sweep
//!    is small.

use memsense_model::queueing::QueueingCurve;
use memsense_model::solver::solve_cpi;
use memsense_model::system::SystemConfig;
use memsense_model::units::Nanoseconds;
use memsense_model::workload::WorkloadParams;
use memsense_sim::config::MemoryConfig;
use memsense_workloads::Workload;

use crate::calibrate::{calibrate, measure_at, CalibratedWorkload, CalibrationBudget};
use crate::render::{f, Table};
use crate::ExperimentError;

/// Ablation 1: how constant is the blocking factor really?
///
/// For each sweep point, the implied BF is
/// `(CPI_eff − CPI_cache) / (MPI × MP)`; the paper's model replaces all of
/// them with the fitted slope. Returns the per-point implied BFs.
pub fn implied_bf_per_point(calibration: &CalibratedWorkload) -> Vec<f64> {
    calibration
        .samples
        .iter()
        .filter(|s| s.measurement.latency_per_instruction > 1e-6)
        .map(|s| {
            (s.measurement.cpi_eff - calibration.cpi_cache) / s.measurement.latency_per_instruction
        })
        .collect()
}

/// Renders ablation 1 for a set of calibrations: fitted BF vs the spread of
/// per-point implied BFs.
pub fn constant_bf_table(calibrations: &[CalibratedWorkload]) -> Table {
    let mut t = Table::new(
        "Ablation: constant-BF assumption (fitted vs per-point implied BF)",
        &[
            "workload",
            "fitted_bf",
            "implied_min",
            "implied_max",
            "spread",
        ],
    );
    for c in calibrations {
        let implied = implied_bf_per_point(c);
        if implied.is_empty() {
            continue;
        }
        let min = implied.iter().cloned().fold(f64::MAX, f64::min);
        let max = implied.iter().cloned().fold(f64::MIN, f64::max);
        t.row(vec![
            c.workload.name().to_string(),
            f(c.bf, 3),
            f(min, 3),
            f(max, 3),
            f(max - min, 3),
        ]);
    }
    t
}

/// Ablation 2: solver CPI under different queueing-curve choices.
///
/// # Errors
///
/// Propagates solver/curve failures.
pub fn queueing_curve_table(
    classes: &[WorkloadParams],
    system: &SystemConfig,
) -> Result<Table, ExperimentError> {
    let composite = QueueingCurve::composite_default();
    let mm1 = QueueingCurve::mm1(Nanoseconds(12.0))?;
    let flat = QueueingCurve::from_measurements(vec![(0.0, 0.0), (1.0, 0.0)], 0.95)?;
    let mut t = Table::new(
        "Ablation: queueing-curve choice (CPI per class)",
        &[
            "class",
            "composite",
            "mm1",
            "no_queueing",
            "composite_vs_none",
        ],
    );
    for class in classes {
        let a = solve_cpi(class, system, &composite)?.cpi_eff;
        let b = solve_cpi(class, system, &mm1)?.cpi_eff;
        let c = solve_cpi(class, system, &flat)?.cpi_eff;
        t.row(vec![
            class.name.clone(),
            f(a, 3),
            f(b, 3),
            f(c, 3),
            f(a / c, 3),
        ]);
    }
    Ok(t)
}

/// Ablation 3 result: blocking factor with and without the prefetcher.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchAblation {
    /// Workload studied.
    pub workload: Workload,
    /// Fitted BF with the stream prefetcher enabled.
    pub bf_prefetch_on: f64,
    /// Fitted BF with the prefetcher disabled.
    pub bf_prefetch_off: f64,
}

/// Ablation 3: calibrate with the prefetcher disabled and compare BF — the
/// Sec. VII claim that better prefetching lowers the blocking factor, run in
/// reverse.
///
/// # Errors
///
/// Propagates calibration failures.
pub fn prefetch_ablation(
    workload: Workload,
    budget: &CalibrationBudget,
) -> Result<PrefetchAblation, ExperimentError> {
    let on = calibrate(workload, budget)?;

    // Re-run the sweep with prefetching off.
    let mut samples = Vec::new();
    for memory in [MemoryConfig::ddr3_1867(), MemoryConfig::ddr3_1333()] {
        for ghz in crate::calibrate::CORE_SPEEDS_GHZ {
            samples.push(measure_at_prefetch_off(workload, ghz, memory, budget)?);
        }
    }
    let off = crate::calibrate::fit_from_samples(workload, samples)?;

    Ok(PrefetchAblation {
        workload,
        bf_prefetch_on: on.bf,
        bf_prefetch_off: off.bf,
    })
}

fn measure_at_prefetch_off(
    workload: Workload,
    core_ghz: f64,
    memory: MemoryConfig,
    budget: &CalibrationBudget,
) -> Result<crate::calibrate::SweepSample, ExperimentError> {
    use memsense_sim::{Machine, SimConfig};
    let threads = match workload.class() {
        memsense_workloads::Class::Hpc => budget.hpc_threads,
        _ => budget.threads,
    };
    let config = SimConfig::xeon_like(threads)
        .with_core_clock(core_ghz)
        .with_memory(memory)
        .with_prefetcher(false);
    let mut machine = Machine::new(config, workload.streams(threads, 0xca11b))?;
    machine.run_ops(budget.warmup_ops);
    let measurement = machine
        .measure_for_ns(budget.window_ns)
        .ok_or(ExperimentError::NoData)?;
    Ok(crate::calibrate::SweepSample {
        core_ghz,
        memory_mts: memory.mega_transfers,
        measurement,
    })
}

/// Ablation 4: pathlength stability across the frequency sweep. Returns the
/// coefficient of variation of instructions retired per simulated
/// nanosecond × CPI (i.e. per unit of work) — near zero when pathlength is
/// frequency-invariant, validating the paper's fixed-pathlength assumption.
///
/// # Errors
///
/// Propagates measurement failures.
pub fn pathlength_cv(
    workload: Workload,
    budget: &CalibrationBudget,
) -> Result<f64, ExperimentError> {
    // Instructions per unit of work are determined by the generator, so the
    // observable is MPKI (misses are tied to work items): its CV across the
    // sweep is the pathlength-stability proxy the paper checks in Sec. V.B.
    let mut mpkis = Vec::new();
    for ghz in crate::calibrate::CORE_SPEEDS_GHZ {
        let s = measure_at(workload, ghz, MemoryConfig::ddr3_1867(), budget)?;
        mpkis.push(s.measurement.mpki);
    }
    let summary =
        memsense_stats::Summary::from_samples(&mpkis).map_err(|_| ExperimentError::NoData)?;
    Ok(summary.coefficient_of_variation())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implied_bf_brackets_fitted_bf() {
        let cal = calibrate(Workload::StructuredData, &CalibrationBudget::quick()).unwrap();
        let implied = implied_bf_per_point(&cal);
        assert!(!implied.is_empty());
        let min = implied.iter().cloned().fold(f64::MAX, f64::min);
        let max = implied.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            min - 0.05 <= cal.bf && cal.bf <= max + 0.05,
            "fitted {} inside implied range {min}..{max}",
            cal.bf
        );
        let t = constant_bf_table(&[cal]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn queueing_ablation_orders_curves() {
        let classes = WorkloadParams::all_classes();
        let sys = SystemConfig::paper_baseline();
        let t = queueing_curve_table(&classes, &sys).unwrap();
        assert_eq!(t.len(), 3);
        // With no queueing, CPI can only go down or stay.
        let ascii = t.to_ascii();
        assert!(ascii.contains("no_queueing"));
    }

    #[test]
    fn prefetcher_off_raises_bf_for_streaming_workload() {
        let ab = prefetch_ablation(Workload::Bwaves, &CalibrationBudget::quick()).unwrap();
        assert!(
            ab.bf_prefetch_off > ab.bf_prefetch_on + 0.03,
            "prefetcher must lower BF: on {} off {}",
            ab.bf_prefetch_on,
            ab.bf_prefetch_off
        );
    }

    #[test]
    fn pathlength_stable_across_frequency() {
        let cv = pathlength_cv(Workload::Jvm, &CalibrationBudget::quick()).unwrap();
        assert!(cv < 0.08, "pathlength proxy CV {cv} should be small");
    }
}
