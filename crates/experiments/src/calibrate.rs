//! Model calibration by frequency and memory-speed scaling (paper Sec. V.A,
//! Fig. 3).
//!
//! The paper estimates `CPI_cache` and `BF` for each workload by measuring
//! `CPI_eff` at different miss penalties — obtained by scaling the core
//! frequency (memory looks faster) and the memory speed (memory looks
//! slower) — and fitting a line of `CPI_eff` against `MPI × MP`. We run the
//! identical experiment on the simulated testbed.

use memsense_model::workload::Segment;
use memsense_sim::config::MemoryConfig;
use memsense_sim::{Machine, Measurement, SimConfig};
use memsense_stats::fit_line;
use memsense_workloads::{Class, Workload};

use crate::{executor, ExperimentError};

/// Core frequencies swept (GHz) — the Tab. 3 set.
pub const CORE_SPEEDS_GHZ: [f64; 4] = [2.1, 2.4, 2.7, 3.1];

/// One measured sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSample {
    /// Core clock at which the sample was taken (GHz).
    pub core_ghz: f64,
    /// Memory transfer rate (MT/s).
    pub memory_mts: f64,
    /// Derived counter measurement.
    pub measurement: Measurement,
}

/// Calibrated model parameters for one workload, with fit quality.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedWorkload {
    /// Workload identity.
    pub workload: Workload,
    /// Fitted infinite-cache CPI (intercept).
    pub cpi_cache: f64,
    /// Fitted blocking factor (slope).
    pub bf: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
    /// 95% confidence interval on the fitted blocking factor.
    pub bf_ci95: (f64, f64),
    /// Mean MPKI across sweep points.
    pub mpki: f64,
    /// Mean writeback rate across sweep points.
    pub wbr: f64,
    /// The raw sweep points behind the fit.
    pub samples: Vec<SweepSample>,
}

impl CalibratedWorkload {
    /// Distribution-free bootstrap confidence interval on the blocking
    /// factor (case resampling of the sweep points). With only eight sweep
    /// points the normal-theory CI in [`CalibratedWorkload::bf_ci95`] can be
    /// optimistic; the bootstrap interval is the robust cross-check.
    ///
    /// # Errors
    ///
    /// Propagates bootstrap failures (degenerate sweeps).
    pub fn bf_bootstrap_ci95(
        &self,
        resamples: usize,
        seed: u64,
    ) -> Result<(f64, f64), ExperimentError> {
        let xs: Vec<f64> = self
            .samples
            .iter()
            .map(|s| s.measurement.latency_per_instruction)
            .collect();
        let ys: Vec<f64> = self.samples.iter().map(|s| s.measurement.cpi_eff).collect();
        let b = memsense_stats::bootstrap_fit(&xs, &ys, resamples, 0.95, seed)
            .map_err(|_| ExperimentError::FitFailed(self.workload.name()))?;
        Ok(b.slope_ci)
    }

    /// Converts the calibration into analytic-model parameters.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation errors (e.g. a negative fitted BF on
    /// a degenerate sweep).
    pub fn to_params(&self) -> Result<memsense_model::WorkloadParams, memsense_model::ModelError> {
        let segment = match self.workload.class() {
            Class::BigData => Segment::BigData,
            Class::Enterprise => Segment::Enterprise,
            Class::Hpc => Segment::Hpc,
        };
        memsense_model::WorkloadParams::new(
            self.workload.name(),
            segment,
            self.cpi_cache,
            self.bf.max(0.0),
            self.mpki,
            self.wbr,
        )
    }
}

/// Budget knobs for a calibration run. Tests use small budgets; the `repro`
/// binary uses the default.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationBudget {
    /// Warm-up instructions per thread before measuring.
    pub warmup_ops: u64,
    /// Measurement window (simulated ns).
    pub window_ns: f64,
    /// Threads for big data / enterprise workloads.
    pub threads: u32,
    /// Threads for HPC workloads (the paper uses 3 cores/socket for SPEC so
    /// the latency-limited model applies — Sec. V.N).
    pub hpc_threads: u32,
}

impl Default for CalibrationBudget {
    fn default() -> Self {
        CalibrationBudget {
            warmup_ops: 150_000,
            window_ns: 250_000.0,
            threads: 8,
            hpc_threads: 4,
        }
    }
}

impl CalibrationBudget {
    /// A reduced budget for unit/integration tests.
    pub fn quick() -> Self {
        CalibrationBudget {
            warmup_ops: 90_000,
            window_ns: 90_000.0,
            threads: 4,
            hpc_threads: 2,
        }
    }

    fn threads_for(&self, workload: Workload) -> u32 {
        match workload.class() {
            Class::Hpc => self.hpc_threads,
            _ => self.threads,
        }
    }
}

/// Measures one workload at one (core speed, memory speed) operating point.
///
/// # Errors
///
/// Returns [`ExperimentError::NoData`] if no instructions retired.
pub fn measure_at(
    workload: Workload,
    core_ghz: f64,
    memory: MemoryConfig,
    budget: &CalibrationBudget,
) -> Result<SweepSample, ExperimentError> {
    let threads = budget.threads_for(workload);
    let config = SimConfig::xeon_like(threads)
        .with_core_clock(core_ghz)
        .with_memory(memory);
    let mut machine =
        Machine::new(config, workload.streams(threads, 0xca11b)).map_err(ExperimentError::Sim)?;
    machine.run_ops(budget.warmup_ops);
    let measurement = machine
        .measure_for_ns(budget.window_ns)
        .ok_or(ExperimentError::NoData)?;
    Ok(SweepSample {
        core_ghz,
        memory_mts: memory.mega_transfers,
        measurement,
    })
}

/// Runs the full frequency × memory-speed sweep for one workload and fits
/// `CPI_eff = CPI_cache + (MPI × MP) × BF`.
///
/// # Errors
///
/// Propagates measurement errors; returns [`ExperimentError::FitFailed`]
/// when the sweep is degenerate.
pub fn calibrate(
    workload: Workload,
    budget: &CalibrationBudget,
) -> Result<CalibratedWorkload, ExperimentError> {
    let mut points = Vec::new();
    for memory in [MemoryConfig::ddr3_1867(), MemoryConfig::ddr3_1333()] {
        for ghz in CORE_SPEEDS_GHZ {
            points.push((memory, ghz));
        }
    }
    // Each operating point simulates an independent machine; run the sweep
    // grid on the executor (serial-equivalent ordering keeps the fit input,
    // and therefore the fitted parameters, bit-identical).
    let samples = executor::par_map_full(
        points,
        |_, (memory, ghz)| {
            format!(
                "calibrate/{} @ {ghz:.1} GHz {:.0} MT/s",
                workload.name(),
                memory.mega_transfers
            )
        },
        |(memory, ghz)| measure_at(workload, ghz, memory, budget),
    )
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    fit_from_samples(workload, samples)
}

/// Fits the Eq. 1 line to a set of sweep samples.
///
/// # Errors
///
/// Returns [`ExperimentError::FitFailed`] when fewer than two points exist
/// or the regressor is degenerate.
pub fn fit_from_samples(
    workload: Workload,
    samples: Vec<SweepSample>,
) -> Result<CalibratedWorkload, ExperimentError> {
    let xs: Vec<f64> = samples
        .iter()
        .map(|s| s.measurement.latency_per_instruction)
        .collect();
    let ys: Vec<f64> = samples.iter().map(|s| s.measurement.cpi_eff).collect();
    let fit = match fit_line(&xs, &ys) {
        Ok(fit) => fit,
        // A zero-variance regressor means the workload exposed no
        // per-instruction miss latency anywhere in the sweep — the extreme
        // core-bound case (beyond even proximity search): BF is zero and
        // CPI_cache is simply the mean measured CPI.
        Err(memsense_stats::StatsError::DegenerateInput) => memsense_stats::LineFit {
            slope: 0.0,
            intercept: ys.iter().sum::<f64>() / ys.len().max(1) as f64,
            r_squared: 0.0,
            slope_stderr: 0.0,
            n: ys.len(),
        },
        Err(_) => return Err(ExperimentError::FitFailed(workload.name())),
    };
    let n = samples.len() as f64;
    let mpki = samples.iter().map(|s| s.measurement.mpki).sum::<f64>() / n;
    let wbr = samples.iter().map(|s| s.measurement.wbr).sum::<f64>() / n;
    Ok(CalibratedWorkload {
        workload,
        cpi_cache: fit.intercept,
        bf: fit.slope,
        r_squared: fit.r_squared,
        bf_ci95: fit.slope_ci95(),
        mpki,
        wbr,
        samples,
    })
}

/// Calibrates every workload (the full Fig. 3 + Tabs. 2/4/5 pipeline).
///
/// # Errors
///
/// Propagates the first per-workload failure.
pub fn calibrate_all(
    budget: &CalibrationBudget,
) -> Result<Vec<CalibratedWorkload>, ExperimentError> {
    executor::par_map_full(
        Workload::all().to_vec(),
        |_, w| format!("calibrate/{}", w.name()),
        |w| calibrate(w, budget),
    )
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_data_calibration_matches_paper_shape() {
        let cal = calibrate(Workload::StructuredData, &CalibrationBudget::quick()).unwrap();
        // Fig. 3(a): good linear fit, BF ≈ 0.20, CPI_cache ≈ 0.9.
        assert!(cal.r_squared > 0.8, "R² = {}", cal.r_squared);
        assert!((cal.bf - 0.20).abs() < 0.10, "BF = {}", cal.bf);
        assert!(
            (cal.cpi_cache - 0.89).abs() < 0.30,
            "CPI_cache = {}",
            cal.cpi_cache
        );
        assert_eq!(cal.samples.len(), 8);
    }

    #[test]
    fn proximity_is_core_bound_low_bf() {
        let cal = calibrate(Workload::Proximity, &CalibrationBudget::quick()).unwrap();
        // "The very low value of the blocking factor indicates the workload
        // is strongly core-bound" — and the poor correlation coefficient is
        // expected and not of concern (Sec. V.E).
        assert!(cal.bf.abs() < 0.15, "BF = {}", cal.bf);
        assert!(cal.mpki < 1.0, "MPKI = {}", cal.mpki);
    }

    #[test]
    fn enterprise_bf_exceeds_hpc_bf() {
        let budget = CalibrationBudget::quick();
        let oltp = calibrate(Workload::Oltp, &budget).unwrap();
        let bwaves = calibrate(Workload::Bwaves, &budget).unwrap();
        assert!(
            oltp.bf > bwaves.bf + 0.15,
            "OLTP BF {} must exceed bwaves BF {}",
            oltp.bf,
            bwaves.bf
        );
    }

    #[test]
    fn cpi_rises_with_core_speed_in_sweep() {
        let cal = calibrate(Workload::Jvm, &CalibrationBudget::quick()).unwrap();
        // Within one memory speed, CPI_eff grows with core clock.
        let fast_mem: Vec<_> = cal
            .samples
            .iter()
            .filter(|s| s.memory_mts > 1500.0)
            .collect();
        assert!(fast_mem.len() >= 2);
        for w in fast_mem.windows(2) {
            assert!(w[1].measurement.cpi_eff > w[0].measurement.cpi_eff - 0.05);
        }
    }

    #[test]
    fn bf_confidence_interval_brackets_bf() {
        let cal = calibrate(Workload::Oltp, &CalibrationBudget::quick()).unwrap();
        let (lo, hi) = cal.bf_ci95;
        assert!(lo <= cal.bf && cal.bf <= hi);
        assert!(hi - lo < 0.2, "tight CI for a clean fit: [{lo}, {hi}]");
        // The bootstrap interval agrees within reason with normal theory.
        let (blo, bhi) = cal.bf_bootstrap_ci95(400, 9).unwrap();
        assert!(blo <= cal.bf && cal.bf <= bhi, "bootstrap [{blo}, {bhi}]");
        assert!(bhi - blo < 0.3, "bootstrap CI width [{blo}, {bhi}]");
    }

    #[test]
    fn to_params_roundtrip() {
        let cal = calibrate(Workload::StructuredData, &CalibrationBudget::quick()).unwrap();
        let p = cal.to_params().unwrap();
        assert_eq!(p.name, "Structured Data");
        assert!((p.cpi_cache - cal.cpi_cache).abs() < 1e-12);
        assert!((p.mpki - cal.mpki).abs() < 1e-12);
    }

    #[test]
    fn fit_fails_on_empty() {
        assert!(matches!(
            fit_from_samples(Workload::Jvm, vec![]),
            Err(ExperimentError::FitFailed(_))
        ));
    }
}
