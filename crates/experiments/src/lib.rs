//! Experiment harness: reproduces every table and figure of the paper.
//!
//! The pipeline mirrors the paper's methodology end to end:
//!
//! 1. [`timeseries`] — counter sampling of each workload
//!    (Figs. 2/4/5).
//! 2. [`calibrate`] — frequency × memory-speed sweeps and the
//!    `CPI_eff` vs `MPI × MP` line fits (Fig. 3, Tabs. 2/4/5).
//! 3. [`validate`] — computed-vs-measured CPI (Tab. 3).
//! 4. [`classify`] — the bandwidth-demand vs latency-sensitivity plane,
//!    class means, and the core-bound cluster (Fig. 6, Tab. 6).
//! 5. [`figures`] — queueing calibration with the simulated MLC (Fig. 7)
//!    and the bandwidth/latency sensitivity application (Figs. 8–11,
//!    Tab. 7), plus the Fig. 1 trend backdrop and the Sec. VII hierarchy
//!    demo.
//! 6. [`ablation`] — the design-choice ablations called out in DESIGN.md.
//!
//! Beyond the paper's own artifacts:
//!
//! * [`sweeps`] — the concrete channel/speed/frequency variations behind
//!   Fig. 8's x-axis.
//! * [`tornado`] — one-at-a-time input sensitivity of the model.
//! * [`io_pressure`] — workload CPI under background DMA traffic.
//! * [`scorecard`] — every paper claim verified programmatically.
//! * [`plot`] — terminal line charts of the figures.
//! * [`json`] — the shared escaping-correct JSON value/parser/serializer
//!   used by the `--report` writer and the `memsense-serve` daemon.
//! * [`executor`] — the parallel experiment executor: every independent
//!   cell/stage above runs on a work-stealing thread pool with
//!   deterministic (serial-equivalent) output ordering, feeding the
//!   `--report` run telemetry.
//! * [`simbench`] — the recorded simulator performance baseline
//!   (`BENCH_sim.json`) and the regression gate the CI `sim-perf` job
//!   enforces against it.
//!
//! Each experiment returns a [`render::Table`] (ASCII + CSV) so results are
//! regenerable; the `repro` binary drives them from the command line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod calibrate;
pub mod classify;
pub mod executor;
pub mod figures;
pub mod io_pressure;
pub mod json;
pub mod plot;
pub mod render;
pub mod scorecard;
pub mod simbench;
pub mod sweeps;
pub mod tables;
pub mod timeseries;
pub mod tornado;
pub mod validate;

/// Error type for the experiment harness.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExperimentError {
    /// The simulator rejected a configuration.
    Sim(memsense_sim::SimError),
    /// The analytic model rejected a parameter or failed to converge.
    Model(memsense_model::ModelError),
    /// A measurement window produced no data.
    NoData,
    /// A regression could not be fit for the named workload.
    FitFailed(&'static str),
    /// Output files could not be written.
    Io(std::io::Error),
}

impl core::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExperimentError::Sim(e) => write!(f, "simulator error: {e}"),
            ExperimentError::Model(e) => write!(f, "model error: {e}"),
            ExperimentError::NoData => write!(f, "measurement window produced no data"),
            ExperimentError::FitFailed(w) => write!(f, "regression failed for {w}"),
            ExperimentError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Sim(e) => Some(e),
            ExperimentError::Model(e) => Some(e),
            ExperimentError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<memsense_model::ModelError> for ExperimentError {
    fn from(e: memsense_model::ModelError) -> Self {
        ExperimentError::Model(e)
    }
}

impl From<memsense_sim::SimError> for ExperimentError {
    fn from(e: memsense_sim::SimError) -> Self {
        ExperimentError::Sim(e)
    }
}

impl From<std::io::Error> for ExperimentError {
    fn from(e: std::io::Error) -> Self {
        ExperimentError::Io(e)
    }
}
