//! Tornado (one-at-a-time) sensitivity analysis of the model inputs.
//!
//! The paper's model has four workload parameters; this analysis perturbs
//! each by ±20% and reports the resulting CPI range per class, answering
//! "which counter must be measured most carefully?" — `BF` and `MPKI`
//! dominate for latency-limited classes, while only `MPKI`/`WBR` (the
//! traffic terms) matter for bandwidth-bound ones.

use memsense_model::queueing::QueueingCurve;
use memsense_model::solver::solve_cpi;
use memsense_model::system::SystemConfig;
use memsense_model::workload::WorkloadParams;

use crate::render::{f, pct, Table};
use crate::{executor, ExperimentError};

/// Which parameter a tornado bar perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parameter {
    /// Infinite-cache CPI.
    CpiCache,
    /// Blocking factor.
    Bf,
    /// Misses per kilo-instruction.
    Mpki,
    /// Writeback rate.
    Wbr,
}

impl Parameter {
    /// All parameters in display order.
    pub fn all() -> [Parameter; 4] {
        [
            Parameter::CpiCache,
            Parameter::Bf,
            Parameter::Mpki,
            Parameter::Wbr,
        ]
    }

    fn apply(self, base: &WorkloadParams, factor: f64) -> WorkloadParams {
        let mut p = base.clone();
        match self {
            Parameter::CpiCache => p.cpi_cache *= factor,
            Parameter::Bf => p.bf *= factor,
            Parameter::Mpki => p.mpki *= factor,
            Parameter::Wbr => p.wbr *= factor,
        }
        p
    }
}

impl core::fmt::Display for Parameter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Parameter::CpiCache => write!(f, "CPI_cache"),
            Parameter::Bf => write!(f, "BF"),
            Parameter::Mpki => write!(f, "MPKI"),
            Parameter::Wbr => write!(f, "WBR"),
        }
    }
}

/// One tornado bar: the CPI swing from perturbing one parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct TornadoBar {
    /// Perturbed parameter.
    pub parameter: Parameter,
    /// CPI with the parameter at `1 − spread`.
    pub cpi_low: f64,
    /// CPI with the parameter at `1 + spread`.
    pub cpi_high: f64,
    /// Baseline CPI.
    pub cpi_base: f64,
}

impl TornadoBar {
    /// Full swing as a fraction of the baseline CPI.
    pub fn swing(&self) -> f64 {
        (self.cpi_high - self.cpi_low).abs() / self.cpi_base
    }
}

/// Runs the tornado analysis for one workload class.
///
/// # Errors
///
/// Propagates solver failures.
pub fn tornado(
    class: &WorkloadParams,
    system: &SystemConfig,
    curve: &QueueingCurve,
    spread: f64,
) -> Result<Vec<TornadoBar>, ExperimentError> {
    let base = solve_cpi(class, system, curve)?.cpi_eff;
    let mut bars = Vec::new();
    for param in Parameter::all() {
        let low = solve_cpi(&param.apply(class, 1.0 - spread), system, curve)?.cpi_eff;
        let high = solve_cpi(&param.apply(class, 1.0 + spread), system, curve)?.cpi_eff;
        bars.push(TornadoBar {
            parameter: param,
            cpi_low: low,
            cpi_high: high,
            cpi_base: base,
        });
    }
    // Largest swing first, the tornado convention.
    bars.sort_by(|a, b| b.swing().total_cmp(&a.swing()));
    Ok(bars)
}

/// Renders the tornado analysis for a set of classes.
///
/// # Errors
///
/// Propagates solver failures.
pub fn tornado_table(
    classes: &[WorkloadParams],
    system: &SystemConfig,
    curve: &QueueingCurve,
    spread: f64,
) -> Result<Table, ExperimentError> {
    let mut t = Table::new(
        format!(
            "Tornado: CPI swing from ±{:.0}% parameter perturbation",
            spread * 100.0
        ),
        &[
            "class",
            "parameter",
            "cpi_low",
            "cpi_base",
            "cpi_high",
            "swing",
        ],
    );
    // One executor job per class (9 solves each); class order is preserved.
    let per_class = executor::par_map_full(
        classes.iter().collect(),
        |_, class| format!("tornado/{}", class.name),
        |class| tornado(class, system, curve, spread),
    )
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    for (class, bars) in classes.iter().zip(per_class) {
        for bar in bars {
            t.row(vec![
                class.name.clone(),
                bar.parameter.to_string(),
                f(bar.cpi_low, 3),
                f(bar.cpi_base, 3),
                f(bar.cpi_high, 3),
                pct(bar.swing(), 1),
            ]);
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SystemConfig, QueueingCurve) {
        (
            SystemConfig::paper_baseline(),
            QueueingCurve::composite_default(),
        )
    }

    #[test]
    fn bars_bracket_baseline() {
        let (sys, curve) = setup();
        let bars = tornado(&WorkloadParams::enterprise_class(), &sys, &curve, 0.2).unwrap();
        assert_eq!(bars.len(), 4);
        for b in &bars {
            assert!(b.cpi_low <= b.cpi_base + 1e-9, "{:?}", b);
            assert!(b.cpi_high >= b.cpi_base - 1e-9, "{:?}", b);
        }
        // Sorted descending by swing.
        for w in bars.windows(2) {
            assert!(w[0].swing() >= w[1].swing());
        }
    }

    #[test]
    fn enterprise_dominated_by_cpi_cache_then_memory_terms() {
        let (sys, curve) = setup();
        let bars = tornado(&WorkloadParams::enterprise_class(), &sys, &curve, 0.2).unwrap();
        // CPI_cache is ~70% of enterprise CPI, so it has the largest bar;
        // WBR barely matters (only via queueing).
        assert_eq!(bars[0].parameter, Parameter::CpiCache);
        let wbr = bars.iter().find(|b| b.parameter == Parameter::Wbr).unwrap();
        assert!(wbr.swing() < 0.05, "WBR swing {}", wbr.swing());
    }

    #[test]
    fn hpc_dominated_by_traffic_terms() {
        let (sys, curve) = setup();
        let bars = tornado(&WorkloadParams::hpc_class(), &sys, &curve, 0.2).unwrap();
        // Bandwidth-bound: CPI ∝ MPI × (1 + WBR); BF is irrelevant.
        assert_eq!(bars[0].parameter, Parameter::Mpki);
        let bf = bars.iter().find(|b| b.parameter == Parameter::Bf).unwrap();
        assert!(
            bf.swing() < 1e-9,
            "BF swing {} for bandwidth-bound class",
            bf.swing()
        );
        let wbr = bars.iter().find(|b| b.parameter == Parameter::Wbr).unwrap();
        assert!(wbr.swing() > 0.05, "WBR matters when traffic-bound");
    }

    #[test]
    fn table_renders_all_rows() {
        let (sys, curve) = setup();
        let t = tornado_table(&WorkloadParams::all_classes(), &sys, &curve, 0.2).unwrap();
        assert_eq!(t.len(), 12);
        assert!(t.to_ascii().contains("CPI_cache"));
    }
}
