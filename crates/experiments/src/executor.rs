//! Parallel experiment executor with run-report telemetry.
//!
//! Every independent experiment unit — a (workload × system-config) cell of
//! a sweep, a per-class sensitivity run, a calibration, a characterization
//! series, a whole `repro` stage — is an embarrassingly parallel job, the
//! same shape as the paper's own methodology grid. This module runs those
//! jobs across a pool of `std::thread::scope` workers pulling from a shared
//! queue, while guaranteeing **serial equivalence**: jobs are tagged with
//! their submission index and results are reassembled in submission order,
//! so every rendered table and figure is byte-identical to the serial
//! output regardless of thread count.
//!
//! Concurrency is bounded globally, not per call site: a process-wide permit
//! pool holds `thread_count() − 1` permits, and each [`par_map`] borrows as
//! many as are free (the calling thread always works too). Nested calls —
//! a parallel stage whose body runs a parallel sweep — therefore never
//! oversubscribe the machine; inner calls simply run serially when the
//! outer level has consumed the pool.
//!
//! The thread count comes from the `MEMSENSE_THREADS` environment variable
//! (`1` forces fully serial execution; unset or `0` means "all available
//! cores"), read once per process.
//!
//! Telemetry: each job's label, wall-clock time, and outcome land in a
//! process-wide job log that [`RunReport::from_run`] converts — together
//! with the solver's iteration/regime counters — into the `--report`
//! table/JSON emitted by the `repro` binary.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use memsense_model::solver::telemetry::SolverStats;

use crate::json::Json;
use crate::render::{f, Table};

// ---------------------------------------------------------------------------
// Thread budget
// ---------------------------------------------------------------------------

/// Worker threads the executor may use, resolved once per process from
/// `MEMSENSE_THREADS` (unset or `0` → all available cores, minimum 1).
///
/// A set-but-unparseable value (`abc`, `-2`, `1.5`) is a configuration
/// error; silently falling back to a default would hide it, so the process
/// exits with a one-line diagnostic instead.
pub fn thread_count() -> usize {
    static COUNT: OnceLock<usize> = OnceLock::new();
    *COUNT.get_or_init(|| {
        let all_cores = || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        match std::env::var("MEMSENSE_THREADS") {
            Err(_) => all_cores(),
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(0) => all_cores(),
                Ok(n) => n,
                Err(_) => {
                    eprintln!(
                        "error: invalid MEMSENSE_THREADS value {raw:?} \
                         (expected a non-negative integer; 0 or unset = all cores)"
                    );
                    // memsense-lint: allow(no-process-exit-in-lib) — documented exit-2 contract for malformed MEMSENSE_THREADS, pinned by the seed tests
                    std::process::exit(2);
                }
            },
        }
    })
}

/// Process-wide pool of *extra* worker permits (the calling thread is free).
fn permit_pool() -> &'static AtomicUsize {
    static POOL: OnceLock<AtomicUsize> = OnceLock::new();
    POOL.get_or_init(|| AtomicUsize::new(thread_count().saturating_sub(1)))
}

/// Takes up to `want` permits from the pool, returning how many were taken.
fn acquire_permits(want: usize) -> usize {
    let pool = permit_pool();
    let mut available = pool.load(Ordering::Relaxed);
    loop {
        let take = want.min(available);
        if take == 0 {
            return 0;
        }
        match pool.compare_exchange_weak(
            available,
            available - take,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return take,
            Err(now) => available = now,
        }
    }
}

fn release_permits(n: usize) {
    if n > 0 {
        permit_pool().fetch_add(n, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Job log
// ---------------------------------------------------------------------------

/// One completed job: its label, wall-clock time, and outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Human-readable job identity, e.g. `fig8/Enterprise class`.
    pub label: String,
    /// Wall-clock time the job took.
    pub wall: Duration,
    /// Whether the job returned `Ok`.
    pub ok: bool,
}

fn job_log() -> &'static Mutex<Vec<JobRecord>> {
    static LOG: OnceLock<Mutex<Vec<JobRecord>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Takes every job record accumulated since the last drain.
pub fn drain_job_log() -> Vec<JobRecord> {
    // memsense-lint: allow(no-panic-in-lib) — push/take cannot panic mid-hold, so the log lock cannot poison
    std::mem::take(&mut *job_log().lock().expect("job log poisoned"))
}

fn log_job(label: String, wall: Duration, ok: bool) {
    job_log()
        .lock()
        // memsense-lint: allow(no-panic-in-lib) — push/take cannot panic mid-hold, so the log lock cannot poison
        .expect("job log poisoned")
        .push(JobRecord { label, wall, ok });
}

// ---------------------------------------------------------------------------
// Core executor
// ---------------------------------------------------------------------------

/// Runs `f` over `items` on the worker pool and returns every outcome in
/// submission order. `label` names each job (for the run report); it is not
/// used for scheduling.
///
/// Jobs are pulled from a shared queue by idle workers (the calling thread
/// included), so long jobs don't convoy behind a static partition. Results
/// carry their submission index and are reassembled in order: the returned
/// vector is identical to what a serial `items.map(f)` would produce.
pub fn par_map_full<I, T, E, F, L>(items: Vec<I>, label: L, f: F) -> Vec<Result<T, E>>
where
    I: Send,
    T: Send,
    E: Send,
    F: Fn(I) -> Result<T, E> + Sync,
    L: Fn(usize, &I) -> String + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let extra = if n > 1 { acquire_permits(n - 1) } else { 0 };

    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let mut slots: Vec<Option<Result<T, E>>> = (0..n).map(|_| None).collect();

    let work = |tx: &mpsc::Sender<(usize, Result<T, E>)>| loop {
        // memsense-lint: allow(no-panic-in-lib) — pop_front cannot panic mid-hold, so the queue lock cannot poison
        let job = queue.lock().expect("job queue poisoned").pop_front();
        let Some((index, item)) = job else { break };
        let label = label(index, &item);
        let started = Instant::now();
        let result = f(item);
        log_job(label, started.elapsed(), result.is_ok());
        // Receiver outlives all senders within the scope below.
        let _ = tx.send((index, result));
    };

    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..extra {
            let tx = tx.clone();
            let work = &work;
            scope.spawn(move || work(&tx));
        }
        // The calling thread is a worker too; with zero permits this is
        // exactly the serial execution path.
        work(&tx);
        drop(tx);
        for (index, result) in rx {
            slots[index] = Some(result);
        }
    });
    release_permits(extra);

    slots
        .into_iter()
        // memsense-lint: allow(no-panic-in-lib) — every queued index sends exactly one result before the scope joins
        .map(|slot| slot.expect("executor lost a job result"))
        .collect()
}

/// [`par_map_full`] with short-circuit semantics matching a serial loop: on
/// failure, the error of the **earliest-submitted** failing job is returned,
/// so the error a caller sees is independent of thread interleaving.
///
/// # Errors
///
/// Returns the first (by submission order) job error.
pub fn par_map<I, T, E, F>(label: &str, items: Vec<I>, f: F) -> Result<Vec<T>, E>
where
    I: Send,
    T: Send,
    E: Send,
    F: Fn(I) -> Result<T, E> + Sync,
{
    let outcomes = par_map_full(items, |i, _| format!("{label}[{i}]"), f);
    outcomes.into_iter().collect()
}

// ---------------------------------------------------------------------------
// Run report
// ---------------------------------------------------------------------------

/// Telemetry for one pipeline stage (one `repro` target).
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name (the `repro` target).
    pub name: String,
    /// Wall-clock time of the stage.
    pub wall: Duration,
    /// Jobs the stage dispatched through the executor (excluding itself).
    pub jobs: usize,
    /// Jobs (or the stage itself) that returned an error.
    pub failures: usize,
}

/// The full run report behind `repro --report`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Worker threads the executor was allowed.
    pub threads: usize,
    /// End-to-end wall-clock time of the run.
    pub total_wall: Duration,
    /// Per-stage telemetry, in deterministic (submission) order.
    pub stages: Vec<StageReport>,
    /// Every non-stage job, as logged (completion order).
    pub jobs: Vec<JobRecord>,
    /// Solver activity during the run (snapshot delta).
    pub solver: SolverStats,
}

/// Label prefix that marks a job record as a whole pipeline stage.
pub const STAGE_LABEL_PREFIX: &str = "stage/";

impl RunReport {
    /// Builds a report from a drained job log. Records labelled
    /// `stage/<name>` become [`StageReport`]s (ordered by `stage_order`);
    /// inner jobs are attributed to a stage when their label starts with
    /// `<name>/`.
    pub fn from_run(
        threads: usize,
        total_wall: Duration,
        log: Vec<JobRecord>,
        stage_order: &[String],
        solver: SolverStats,
    ) -> RunReport {
        let (stage_records, jobs): (Vec<JobRecord>, Vec<JobRecord>) = log
            .into_iter()
            .partition(|r| r.label.starts_with(STAGE_LABEL_PREFIX));
        let stages = stage_order
            .iter()
            .map(|name| {
                let record = stage_records
                    .iter()
                    .find(|r| r.label[STAGE_LABEL_PREFIX.len()..] == *name.as_str());
                let prefix = format!("{name}/");
                let inner: Vec<&JobRecord> = jobs
                    .iter()
                    .filter(|j| j.label.starts_with(&prefix))
                    .collect();
                StageReport {
                    name: name.clone(),
                    wall: record.map(|r| r.wall).unwrap_or_default(),
                    jobs: inner.len(),
                    failures: inner.iter().filter(|j| !j.ok).count()
                        + usize::from(record.is_some_and(|r| !r.ok)),
                }
            })
            .collect();
        RunReport {
            threads,
            total_wall,
            stages,
            jobs,
            solver,
        }
    }

    /// Total job failures across all stages.
    pub fn failures(&self) -> usize {
        self.stages.iter().map(|s| s.failures).sum()
    }

    /// Renders the per-stage table (what `--report` prints).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Run report: {} stages on {} thread{} in {:.1} ms \
                 ({} solves, {} iterations; regimes: {} core / {} latency / {} bandwidth)",
                self.stages.len(),
                self.threads,
                if self.threads == 1 { "" } else { "s" },
                self.total_wall.as_secs_f64() * 1e3,
                self.solver.solves,
                self.solver.iterations,
                self.solver.core_bound,
                self.solver.latency_limited,
                self.solver.bandwidth_bound,
            ),
            &["stage", "wall_ms", "jobs", "failures"],
        );
        for s in &self.stages {
            t.row(vec![
                s.name.clone(),
                f(s.wall.as_secs_f64() * 1e3, 1),
                s.jobs.to_string(),
                s.failures.to_string(),
            ]);
        }
        t
    }

    /// The report as a [`Json`] value (schema:
    /// `{threads, total_wall_ms, stages[], jobs[], solver{}}`).
    pub fn to_json_value(&self) -> Json {
        let wall_ms = |d: &Duration| {
            // Keep the historical 3-decimal precision of the report file.
            Json::num((d.as_secs_f64() * 1e6).round() / 1e3)
        };
        Json::obj(vec![
            ("threads", Json::num(self.threads as f64)),
            ("total_wall_ms", wall_ms(&self.total_wall)),
            (
                "stages",
                Json::Arr(
                    self.stages
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("name", Json::str(s.name.clone())),
                                ("wall_ms", wall_ms(&s.wall)),
                                ("jobs", Json::num(s.jobs as f64)),
                                ("failures", Json::num(s.failures as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "jobs",
                Json::Arr(
                    self.jobs
                        .iter()
                        .map(|j| {
                            Json::obj(vec![
                                ("label", Json::str(j.label.clone())),
                                ("wall_ms", wall_ms(&j.wall)),
                                ("ok", Json::Bool(j.ok)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "solver",
                Json::obj(vec![
                    ("solves", Json::num(self.solver.solves as f64)),
                    ("iterations", Json::num(self.solver.iterations as f64)),
                    ("core_bound", Json::num(self.solver.core_bound as f64)),
                    (
                        "latency_limited",
                        Json::num(self.solver.latency_limited as f64),
                    ),
                    (
                        "bandwidth_bound",
                        Json::num(self.solver.bandwidth_bound as f64),
                    ),
                ]),
            ),
        ])
    }

    /// Machine-readable form (documented in EXPERIMENTS.md), rendered
    /// through the shared escaping-correct [`crate::json`] module.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_submission_order() {
        // Jobs finish out of order (later jobs are quicker), but results
        // must come back in submission order.
        let items: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = par_map("order", items.clone(), |i| {
            if i % 7 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
            Ok::<u64, ()>(i * 3)
        })
        .unwrap();
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
        drain_job_log();
    }

    #[test]
    fn par_map_returns_earliest_error() {
        let out: Result<Vec<u32>, String> = par_map("err", (0u32..32).collect(), |i| {
            if i == 5 || i == 20 {
                Err(format!("boom {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(out.unwrap_err(), "boom 5");
        drain_job_log();
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Result<Vec<u32>, ()> = par_map("none", Vec::<u32>::new(), Ok);
        assert_eq!(out.unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn job_log_records_labels_and_outcomes() {
        drain_job_log();
        let _ = par_map_full(
            vec![1u32, 2],
            |_, item| format!("logged/{item}"),
            |i| if i == 2 { Err(()) } else { Ok(i) },
        );
        let mut log = drain_job_log();
        log.sort_by(|a, b| a.label.cmp(&b.label));
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].label, "logged/1");
        assert!(log[0].ok);
        assert_eq!(log[1].label, "logged/2");
        assert!(!log[1].ok);
    }

    #[test]
    fn nested_par_map_completes_and_is_ordered() {
        let out: Vec<Vec<u32>> = par_map("outer", (0u32..8).collect(), |i| {
            par_map("inner", (0u32..8).collect(), move |j| {
                Ok::<u32, ()>(i * 10 + j)
            })
        })
        .unwrap();
        for (i, inner) in out.iter().enumerate() {
            let want: Vec<u32> = (0..8).map(|j| i as u32 * 10 + j).collect();
            assert_eq!(inner, &want);
        }
        drain_job_log();
    }

    #[test]
    fn permits_are_returned_after_use() {
        let before = permit_pool().load(Ordering::Relaxed);
        let _: Vec<u32> = par_map("permits", (0u32..32).collect(), Ok::<u32, ()>).unwrap();
        // Other tests run concurrently, so poll briefly for the pool to
        // settle back to its pre-call level.
        for _ in 0..100 {
            if permit_pool().load(Ordering::Relaxed) >= before {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(permit_pool().load(Ordering::Relaxed) >= before);
        drain_job_log();
    }

    #[test]
    fn run_report_groups_stages_and_jobs() {
        let log = vec![
            JobRecord {
                label: "stage/fig8".into(),
                wall: Duration::from_millis(10),
                ok: true,
            },
            JobRecord {
                label: "fig8/Enterprise class".into(),
                wall: Duration::from_millis(4),
                ok: true,
            },
            JobRecord {
                label: "fig8/HPC class".into(),
                wall: Duration::from_millis(5),
                ok: false,
            },
            JobRecord {
                label: "stage/tab7".into(),
                wall: Duration::from_millis(2),
                ok: false,
            },
        ];
        let report = RunReport::from_run(
            4,
            Duration::from_millis(12),
            log,
            &["fig8".to_string(), "tab7".to_string()],
            SolverStats::default(),
        );
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].name, "fig8");
        assert_eq!(report.stages[0].jobs, 2);
        assert_eq!(report.stages[0].failures, 1);
        assert_eq!(report.stages[1].failures, 1);
        assert_eq!(report.failures(), 2);
        let table = report.to_table().to_ascii();
        assert!(table.contains("fig8") && table.contains("tab7"));
        let json = report.to_json();
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"name\": \"fig8\""));
        assert!(json.contains("\"label\": \"fig8/Enterprise class\""));
        assert!(json.contains("\"solver\""));
        // The report is valid JSON by construction (shared json module).
        let parsed = Json::parse(&json).expect("report parses");
        assert_eq!(parsed.get("threads").unwrap().as_u64(), Some(4));
        assert_eq!(
            parsed.get("stages").unwrap().as_arr().unwrap()[0]
                .get("jobs")
                .unwrap()
                .as_u64(),
            Some(2)
        );
    }

    #[test]
    fn report_json_escapes_label_content() {
        let log = vec![JobRecord {
            label: "weird/\"quoted\"\nlabel\\path".into(),
            wall: Duration::from_millis(1),
            ok: true,
        }];
        let report = RunReport::from_run(
            1,
            Duration::from_millis(1),
            log,
            &[],
            SolverStats::default(),
        );
        let json = report.to_json();
        let parsed = Json::parse(&json).expect("escaped report parses");
        let label = parsed.get("jobs").unwrap().as_arr().unwrap()[0]
            .get("label")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert_eq!(label, "weird/\"quoted\"\nlabel\\path");
    }
}
