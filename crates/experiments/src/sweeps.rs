//! Configuration sweeps (paper Sec. VI.C.2).
//!
//! Fig. 8's x-axis is built by "model[ing] variations of this baseline,
//! including changes in channel speed, efficiency, and number of channels".
//! This module exposes those concrete variations (rather than the abstract
//! per-core-delta walk) plus a core-frequency sweep — the knobs a system
//! architect actually turns.

use memsense_model::queueing::QueueingCurve;
use memsense_model::solver::solve_cpi;
use memsense_model::system::SystemConfig;
use memsense_model::units::GigaHertz;
use memsense_model::workload::WorkloadParams;

use crate::render::{f, pct, Table};
use crate::{executor, ExperimentError};

/// Channel counts explored by [`channel_sweep_table`].
pub const CHANNEL_COUNTS: [u32; 5] = [1, 2, 3, 4, 6];

/// DDR speeds (MT/s) explored by [`speed_sweep_table`].
pub const CHANNEL_SPEEDS: [f64; 4] = [1066.0, 1333.0, 1600.0, 1866.7];

/// CPI of each class as the number of memory channels varies, with the
/// paper-baseline 4-channel configuration as the reference.
///
/// # Errors
///
/// Propagates model failures.
pub fn channel_sweep_table(
    classes: &[WorkloadParams],
    baseline: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<Table, ExperimentError> {
    let mut t = Table::new(
        "Channel-count sweep: CPI per class (reference: 4 channels)",
        &[
            "class",
            "channels",
            "eff_bw_gbps",
            "cpi",
            "vs_4ch",
            "regime",
        ],
    );
    // Each class cell is independent; run them on the executor and append
    // the returned row blocks in class order (serial-equivalent output).
    let blocks = executor::par_map_full(
        classes.iter().collect(),
        |_, class| format!("channel-sweep/{}", class.name),
        |class| -> Result<Vec<Vec<String>>, ExperimentError> {
            let reference = solve_cpi(class, &baseline.clone().with_channels(4)?, curve)?.cpi_eff;
            let mut rows = Vec::new();
            for ch in CHANNEL_COUNTS {
                let sys = baseline.clone().with_channels(ch)?;
                let solved = solve_cpi(class, &sys, curve)?;
                rows.push(vec![
                    class.name.clone(),
                    ch.to_string(),
                    f(sys.effective_bandwidth().value(), 1),
                    f(solved.cpi_eff, 3),
                    pct(solved.cpi_eff / reference - 1.0, 1),
                    solved.regime.to_string(),
                ]);
            }
            Ok(rows)
        },
    )
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    for rows in blocks {
        for row in rows {
            t.row(row);
        }
    }
    Ok(t)
}

/// CPI of each class as the DDR transfer rate varies.
///
/// # Errors
///
/// Propagates model failures.
pub fn speed_sweep_table(
    classes: &[WorkloadParams],
    baseline: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<Table, ExperimentError> {
    let mut t = Table::new(
        "Channel-speed sweep: CPI per class (reference: DDR3-1867)",
        &["class", "mts", "eff_bw_gbps", "cpi", "vs_1867", "regime"],
    );
    let blocks = executor::par_map_full(
        classes.iter().collect(),
        |_, class| format!("speed-sweep/{}", class.name),
        |class| -> Result<Vec<Vec<String>>, ExperimentError> {
            let reference =
                solve_cpi(class, &baseline.clone().with_channel_speed(1866.7)?, curve)?.cpi_eff;
            let mut rows = Vec::new();
            for mts in CHANNEL_SPEEDS {
                let sys = baseline.clone().with_channel_speed(mts)?;
                let solved = solve_cpi(class, &sys, curve)?;
                rows.push(vec![
                    class.name.clone(),
                    format!("{mts:.0}"),
                    f(sys.effective_bandwidth().value(), 1),
                    f(solved.cpi_eff, 3),
                    pct(solved.cpi_eff / reference - 1.0, 1),
                    solved.regime.to_string(),
                ]);
            }
            Ok(rows)
        },
    )
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    for rows in blocks {
        for row in rows {
            t.row(row);
        }
    }
    Ok(t)
}

/// Wall-clock performance (relative) as the core clock varies: CPI rises
/// with frequency (memory looks slower in cycles) but time-per-instruction
/// still falls — the Sec. V.A methodology's premise, as a table.
///
/// # Errors
///
/// Propagates model failures.
pub fn frequency_sweep_table(
    classes: &[WorkloadParams],
    baseline: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<Table, ExperimentError> {
    let mut t = Table::new(
        "Core-frequency sweep: CPI vs wall-clock performance",
        &["class", "ghz", "cpi", "rel_performance"],
    );
    let blocks = executor::par_map_full(
        classes.iter().collect(),
        |_, class| format!("frequency-sweep/{}", class.name),
        |class| -> Result<Vec<Vec<String>>, ExperimentError> {
            let base_sys = baseline.clone().with_core_clock(GigaHertz(2.7))?;
            let base_perf = 2.7 / solve_cpi(class, &base_sys, curve)?.cpi_eff;
            let mut rows = Vec::new();
            for ghz in crate::calibrate::CORE_SPEEDS_GHZ {
                let sys = baseline.clone().with_core_clock(GigaHertz(ghz))?;
                let solved = solve_cpi(class, &sys, curve)?;
                rows.push(vec![
                    class.name.clone(),
                    f(ghz, 1),
                    f(solved.cpi_eff, 3),
                    f(ghz / solved.cpi_eff / base_perf, 3),
                ]);
            }
            Ok(rows)
        },
    )
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    for rows in blocks {
        for row in rows {
            t.row(row);
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vec<WorkloadParams>, SystemConfig, QueueingCurve) {
        (
            WorkloadParams::all_classes(),
            SystemConfig::paper_baseline(),
            QueueingCurve::composite_default(),
        )
    }

    #[test]
    fn channel_sweep_monotone_and_hpc_starved_at_one_channel() {
        let (classes, sys, curve) = setup();
        let t = channel_sweep_table(&classes, &sys, &curve).unwrap();
        assert_eq!(t.len(), 3 * CHANNEL_COUNTS.len());
        let csv = t.to_csv();
        // HPC at 1 channel: catastrophic vs 4 channels.
        let hpc_1ch = csv.lines().find(|l| l.starts_with("HPC class,1,")).unwrap();
        let pct: f64 = hpc_1ch
            .split(',')
            .nth(4)
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(pct > 150.0, "HPC at 1 channel: +{pct}%");
        // Enterprise at 1 channel suffers far less.
        let ent_1ch = csv
            .lines()
            .find(|l| l.starts_with("Enterprise class,1,"))
            .unwrap();
        let ent_pct: f64 = ent_1ch
            .split(',')
            .nth(4)
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(ent_pct < pct / 2.0, "enterprise +{ent_pct}% vs HPC +{pct}%");
    }

    #[test]
    fn speed_sweep_helps_hpc_most() {
        let (classes, sys, curve) = setup();
        let t = speed_sweep_table(&classes, &sys, &curve).unwrap();
        let csv = t.to_csv();
        let get = |prefix: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap()
                .split(',')
                .nth(4)
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        let hpc_slow = get("HPC class,1066,");
        let ent_slow = get("Enterprise class,1066,");
        assert!(hpc_slow > 50.0, "HPC at DDR3-1066: +{hpc_slow}%");
        assert!(ent_slow < 10.0, "enterprise at DDR3-1066: +{ent_slow}%");
    }

    #[test]
    fn frequency_sweep_cpi_up_perf_up() {
        let (classes, sys, curve) = setup();
        let t = frequency_sweep_table(&classes, &sys, &curve).unwrap();
        let csv = t.to_csv();
        // Enterprise: CPI at 3.1 GHz > CPI at 2.1 GHz, but relative
        // performance at 3.1 GHz > at 2.1 GHz.
        let row = |ghz: &str| -> Vec<String> {
            csv.lines()
                .find(|l| l.starts_with(&format!("Enterprise class,{ghz},")))
                .unwrap()
                .split(',')
                .map(|s| s.to_string())
                .collect()
        };
        let slow = row("2.1");
        let fast = row("3.1");
        let cpi_slow: f64 = slow[2].parse().unwrap();
        let cpi_fast: f64 = fast[2].parse().unwrap();
        let perf_slow: f64 = slow[3].parse().unwrap();
        let perf_fast: f64 = fast[3].parse().unwrap();
        assert!(cpi_fast > cpi_slow, "CPI rises with clock");
        assert!(perf_fast > perf_slow, "performance still improves");
    }
}
