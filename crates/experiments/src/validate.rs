//! Model validation: computed vs measured CPI (paper Tab. 3 / Sec. V.H).
//!
//! With `CPI_cache` and `BF` fitted once, Eq. 1 must predict the measured
//! `CPI_eff` at *every* sweep point from that point's own `MPI` and `MP`
//! counters. The paper reports ≤ ±3% error for structured data and ≤ ±2%
//! for the other big data workloads.

use memsense_model::cpi::effective_cpi_raw;
use memsense_model::units::Cycles;
use memsense_workloads::Workload;

use crate::calibrate::{calibrate, CalibratedWorkload, CalibrationBudget};
use crate::render::{f, pct, Table};
use crate::ExperimentError;

/// One computed-vs-measured comparison row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationPoint {
    /// Core clock (GHz).
    pub core_ghz: f64,
    /// Memory speed (MT/s).
    pub memory_mts: f64,
    /// Measured misses per instruction.
    pub mpi: f64,
    /// Measured miss penalty (core cycles).
    pub mp_cycles: f64,
    /// CPI computed by Eq. 1 from the calibrated parameters.
    pub cpi_computed: f64,
    /// CPI measured by the counters.
    pub cpi_measured: f64,
}

impl ValidationPoint {
    /// Relative error `(computed − measured) / measured`.
    pub fn error(&self) -> f64 {
        (self.cpi_computed - self.cpi_measured) / self.cpi_measured
    }
}

/// Full validation result for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Validation {
    /// The calibration being validated.
    pub calibration: CalibratedWorkload,
    /// Per-sweep-point comparisons.
    pub points: Vec<ValidationPoint>,
}

impl Validation {
    /// Largest absolute relative error across points.
    pub fn max_abs_error(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.error().abs())
            .fold(0.0, f64::max)
    }

    /// Renders the Tab. 3 layout: one column block per sweep point.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Tab. 3: computed vs measured CPI — {} (CPI_cache {:.2}, BF {:.2})",
                self.calibration.workload.name(),
                self.calibration.cpi_cache,
                self.calibration.bf
            ),
            &[
                "core_ghz",
                "mem_mts",
                "MPI",
                "MP_cycles",
                "cpi_computed",
                "cpi_measured",
                "error",
            ],
        );
        for p in &self.points {
            t.row(vec![
                f(p.core_ghz, 1),
                f(p.memory_mts, 0),
                f(p.mpi, 4),
                f(p.mp_cycles, 0),
                f(p.cpi_computed, 2),
                f(p.cpi_measured, 2),
                pct(p.error(), 1),
            ]);
        }
        t
    }
}

/// Validates a calibration against its own sweep points (the paper's
/// Tab. 3 construction).
pub fn validate_calibration(calibration: CalibratedWorkload) -> Validation {
    let points = calibration
        .samples
        .iter()
        .map(|s| {
            let mpi = s.measurement.mpki / 1000.0;
            let mp = s.measurement.miss_penalty_cycles;
            ValidationPoint {
                core_ghz: s.core_ghz,
                memory_mts: s.memory_mts,
                mpi,
                mp_cycles: mp,
                cpi_computed: effective_cpi_raw(
                    calibration.cpi_cache,
                    mpi,
                    Cycles(mp),
                    calibration.bf,
                ),
                cpi_measured: s.measurement.cpi_eff,
            }
        })
        .collect();
    Validation {
        calibration,
        points,
    }
}

/// Calibrates and validates one workload end to end.
///
/// # Errors
///
/// Propagates calibration failures.
pub fn validate(
    workload: Workload,
    budget: &CalibrationBudget,
) -> Result<Validation, ExperimentError> {
    Ok(validate_calibration(calibrate(workload, budget)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_data_error_small() {
        let v = validate(Workload::StructuredData, &CalibrationBudget::quick()).unwrap();
        assert_eq!(v.points.len(), 8);
        // Paper: ≤ ±3%; allow a simulator margin.
        assert!(v.max_abs_error() < 0.06, "max error {}", v.max_abs_error());
    }

    #[test]
    fn other_big_data_errors_small() {
        for w in [Workload::Nits, Workload::Spark] {
            let v = validate(w, &CalibrationBudget::quick()).unwrap();
            assert!(
                v.max_abs_error() < 0.08,
                "{}: max error {}",
                w,
                v.max_abs_error()
            );
        }
    }

    #[test]
    fn table_has_error_row_content() {
        let v = validate(Workload::StructuredData, &CalibrationBudget::quick()).unwrap();
        let t = v.to_table();
        assert_eq!(t.len(), 8);
        let ascii = t.to_ascii();
        assert!(ascii.contains("cpi_computed"));
        assert!(ascii.contains('%'));
    }

    #[test]
    fn error_definition() {
        let p = ValidationPoint {
            core_ghz: 2.7,
            memory_mts: 1867.0,
            mpi: 0.005,
            mp_cycles: 200.0,
            cpi_computed: 1.05,
            cpi_measured: 1.0,
        };
        assert!((p.error() - 0.05).abs() < 1e-12);
    }
}
