//! Minimal dependency-free JSON: a value type, a strict parser, and
//! escaping-correct serializers.
//!
//! Both the `repro --report` run-report writer and the `memsense-serve`
//! HTTP daemon emit JSON; before this module each call site hand-rolled its
//! own string assembly (with its own escaping bugs waiting to happen). All
//! JSON in the workspace now flows through here:
//!
//! * [`Json`] — the value type. Objects preserve insertion order so emitted
//!   documents are stable and human-diffable.
//! * [`Json::parse`] — a strict RFC 8259 parser (no trailing commas, no
//!   comments, `\uXXXX` escapes including surrogate pairs, depth-limited so
//!   untrusted network input cannot overflow the stack).
//! * [`Json::to_string`] / [`Json::to_string_pretty`] — compact and
//!   2-space-indented serializers.
//! * [`Json::canonical`] — the cache-key form: compact with object keys
//!   sorted, so two requests that differ only in key order (or in `-0.0`
//!   vs `0.0`) serialize identically.
//! * [`escape_str`] / [`fmt_f64`] — the escaping and float-canonicalization
//!   primitives, usable directly by code that streams JSON.
//!
//! Float policy: numbers serialize via [`fmt_f64`], Rust's shortest
//! round-trip form with `-0.0` collapsed to `0` — and non-finite values
//! (which RFC 8259 cannot represent) serialize as `null` rather than
//! leaking `NaN`/`inf` tokens into the document. The parser likewise
//! rejects literals that overflow to infinity.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object members keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite numbers serialize as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Stored as `f64`, like JavaScript.
    Num(f64),
    /// A string (unescaped form).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth the parser accepts (network input is untrusted).
const MAX_DEPTH: usize = 64;

impl Json {
    // -- constructors -------------------------------------------------------

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for a number value.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    // -- accessors ----------------------------------------------------------

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    // -- serializers --------------------------------------------------------

    /// Compact serialization (no whitespace), insertion order preserved.
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0, false);
        out
    }

    /// Pretty serialization: 2-space indent, `": "` after keys.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0, false);
        out.push('\n');
        out
    }

    /// Canonical serialization for content addressing: compact, object keys
    /// sorted bytewise, floats via [`fmt_f64`] (so `-0.0` and `0.0` produce
    /// the same key). Two semantically equal documents that differ only in
    /// whitespace, key order, or zero sign canonicalize identically.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0, true);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize, canonical: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => escape_str(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Self::newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1, canonical);
                }
                Self::newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                let sorted: Vec<&(String, Json)> = if canonical {
                    let ordered: BTreeMap<&String, &(String, Json)> =
                        pairs.iter().map(|p| (&p.0, p)).collect();
                    ordered.into_values().collect()
                } else {
                    pairs.iter().collect()
                };
                for (i, (key, value)) in sorted.into_iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Self::newline_indent(out, indent, level + 1);
                    escape_str(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1, canonical);
                }
                Self::newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * level {
                out.push(' ');
            }
        }
    }

    // -- parser -------------------------------------------------------------

    /// Parses a complete JSON document (exactly one value plus whitespace).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the byte offset of the first problem:
    /// syntax errors, invalid escapes, nesting beyond [`MAX_DEPTH`], number
    /// literals that overflow `f64`, or trailing garbage.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

/// Appends the JSON-escaped, quoted form of `s` to `out`: `"` and `\` are
/// backslash-escaped, control characters become `\n`/`\r`/`\t` or `\u00XX`.
pub fn escape_str(s: &str, out: &mut String) {
    out.reserve(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The JSON-escaped, quoted form of `s` as a new string.
pub fn quote(s: &str) -> String {
    let mut out = String::new();
    escape_str(s, &mut out);
    out
}

/// Canonical float formatting for JSON output and cache keys.
///
/// * Finite values use Rust's shortest round-trip decimal form.
/// * `-0.0` collapses to `0`, so it keys and serializes identically to `0.0`.
/// * Non-finite values (`NaN`, `±inf`) have no JSON representation and
///   become `null` — they never leak as bare tokens.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == 0.0 {
        return "0".to_string();
    }
    // memsense-lint: allow(no-raw-float-format) — this IS the canonical formatter every wire path must route through
    format!("{v}")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is a &str, so the byte range is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{0008}',
            b'f' => '\u{000c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require a \uXXXX low surrogate.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            _ => return Err(self.err("invalid escape character")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one leading zero or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let value: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !value.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Json::Num(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_backslashes_and_control_chars() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("tab\there"), "\"tab\\there\"");
        assert_eq!(quote("\r"), "\"\\r\"");
        assert_eq!(quote("\u{0001}"), "\"\\u0001\"");
        assert_eq!(quote("héllo"), "\"héllo\"");
    }

    #[test]
    fn fmt_f64_is_canonical() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(-0.0), "0", "-0.0 keys identically to 0.0");
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(-2.25), "-2.25");
        assert_eq!(fmt_f64(f64::NAN), "null", "NaN must not leak");
        assert_eq!(fmt_f64(f64::INFINITY), "null", "inf must not leak");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "null");
        // Shortest round-trip: value survives a parse cycle.
        let v = 0.1 + 0.2;
        assert_eq!(fmt_f64(v).parse::<f64>().unwrap(), v);
    }

    #[test]
    fn parse_roundtrips_all_value_kinds() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null, "e": {}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert!(v.get("d").unwrap().is_null());
        assert_eq!(v.get("e"), Some(&Json::Obj(vec![])));
        // Compact serialization re-parses to the same value.
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        // Pretty serialization too.
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,]",
            "[1 2]",
            "{'a':1}",
            "nul",
            "01",
            "1.",
            "1e",
            "--1",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800\"",
            "1 2",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_handles_unicode_escapes_and_surrogates() {
        assert_eq!(
            Json::parse(r#""\u00e9\u0041""#).unwrap().as_str(),
            Some("éA")
        );
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("😀")
        );
    }

    #[test]
    fn parse_depth_limit_protects_the_stack() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(32) + &"]".repeat(32);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn canonical_sorts_keys_and_collapses_zero_sign() {
        let a = Json::parse(r#"{"b": 1, "a": {"y": -0.0, "x": 2}}"#).unwrap();
        let b = Json::parse(r#"{"a": {"x": 2, "y": 0.0}, "b": 1}"#).unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), r#"{"a":{"x":2,"y":0},"b":1}"#);
        // Non-canonical serialization preserves insertion order.
        assert_eq!(a.to_string(), r#"{"b":1,"a":{"y":0,"x":2}}"#);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let v = Json::Obj(vec![("bad".into(), Json::Num(f64::NAN))]);
        assert_eq!(v.to_string(), r#"{"bad":null}"#);
        assert_eq!(
            Json::Arr(vec![Json::Num(f64::INFINITY)]).to_string(),
            "[null]"
        );
    }

    #[test]
    fn pretty_form_is_indented() {
        let v = Json::obj(vec![
            ("name", Json::str("fig8")),
            ("vals", Json::Arr(vec![Json::num(1.0), Json::num(2.0)])),
        ]);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\"name\": \"fig8\""));
        assert!(pretty.starts_with("{\n  \"name\""));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn accessors_are_type_safe() {
        let v = Json::parse(r#"{"n": 3, "s": "x", "f": 1.5}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None, "fractional is not u64");
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.0).get("x"), None);
    }
}
