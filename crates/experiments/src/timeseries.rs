//! Characterization time series (paper Figs. 2, 4, 5).
//!
//! The paper plots CPU utilization, effective CPI, and memory bandwidth over
//! time for each workload — ~100 ms sampling for big data and enterprise
//! (Figs. 2, 4) and 1 s sampling for HPC (Fig. 5). Simulated time is scaled:
//! one "display interval" here is a fixed slice of simulated nanoseconds,
//! preserving the figures' content (steady-state level, variability, and
//! phase structure) rather than wall-clock length.

use memsense_sim::{Machine, Sample, SimConfig};
use memsense_workloads::{Class, Workload};

use crate::render::{f, Table};
use crate::ExperimentError;

/// A characterization run for one workload.
#[derive(Debug, Clone)]
pub struct CharacterizationSeries {
    /// Workload identity.
    pub workload: Workload,
    /// Counter samples at fixed intervals.
    pub samples: Vec<Sample>,
}

impl CharacterizationSeries {
    /// Mean CPU utilization across samples.
    pub fn mean_utilization(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.measurement.cpu_utilization))
    }

    /// Mean CPI across samples.
    pub fn mean_cpi(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.measurement.cpi_eff))
    }

    /// Mean bandwidth (GB/s) across samples.
    pub fn mean_bandwidth(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.measurement.bandwidth_gbps))
    }

    /// Coefficient of variation of CPI — the "narrow range" (column store)
    /// vs "a lot of variation" (Spark) observation of Sec. V.C/V.F.
    pub fn cpi_cv(&self) -> f64 {
        let cpis: Vec<f64> = self.samples.iter().map(|s| s.measurement.cpi_eff).collect();
        match memsense_stats::Summary::from_samples(&cpis) {
            Ok(s) => s.coefficient_of_variation(),
            Err(_) => 0.0,
        }
    }

    /// Renders the per-sample series as a table (time, util, CPI, GB/s).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!("{} characterization", self.workload.name()),
            &["t_ms", "cpu_util", "cpi", "bw_gbps", "mpki"],
        );
        for s in &self.samples {
            t.row(vec![
                f(s.time_s * 1e3, 3),
                f(s.measurement.cpu_utilization, 3),
                f(s.measurement.cpi_eff, 3),
                f(s.measurement.bandwidth_gbps, 2),
                f(s.measurement.mpki, 2),
            ]);
        }
        t
    }
}

/// Budget for a characterization run.
#[derive(Debug, Clone, Copy)]
pub struct SeriesBudget {
    /// Hardware threads.
    pub threads: u32,
    /// Warm-up instructions per thread.
    pub warmup_ops: u64,
    /// Simulated nanoseconds per sample.
    pub interval_ns: f64,
    /// Number of samples.
    pub samples: usize,
}

impl Default for SeriesBudget {
    fn default() -> Self {
        SeriesBudget {
            threads: 8,
            warmup_ops: 60_000,
            interval_ns: 20_000.0,
            samples: 40,
        }
    }
}

impl SeriesBudget {
    /// Reduced budget for tests.
    pub fn quick() -> Self {
        SeriesBudget {
            threads: 4,
            warmup_ops: 30_000,
            interval_ns: 10_000.0,
            samples: 12,
        }
    }
}

/// Runs the characterization sampler for one workload.
///
/// # Errors
///
/// Propagates simulator construction failures.
pub fn characterize(
    workload: Workload,
    budget: &SeriesBudget,
) -> Result<CharacterizationSeries, ExperimentError> {
    let threads = match workload.class() {
        Class::Hpc => budget.threads.min(4),
        _ => budget.threads,
    };
    let config = SimConfig::xeon_like(threads);
    let mut machine = Machine::new(config, workload.streams(threads, 0x5e71e5))?;
    machine.run_ops(budget.warmup_ops);
    let samples = machine.sample_series(budget.interval_ns, budget.samples);
    Ok(CharacterizationSeries { workload, samples })
}

/// Runs Fig. 2 (big data), Fig. 4 (enterprise), or Fig. 5 (HPC) — all four
/// workloads of the class.
///
/// # Errors
///
/// Propagates per-workload failures.
pub fn class_series(
    class: Class,
    budget: &SeriesBudget,
) -> Result<Vec<CharacterizationSeries>, ExperimentError> {
    let workloads: Vec<Workload> = Workload::all()
        .into_iter()
        .filter(|w| w.class() == class)
        .collect();
    // Each workload simulates its own machine; characterize them on the
    // executor, keeping workload order (serial-equivalent output).
    crate::executor::par_map_full(
        workloads,
        |_, w| format!("timeseries/{}", w.name()),
        |w| characterize(w, budget),
    )
    .into_iter()
    .collect()
}

/// Summary table across a class (one row per workload) — the headline
/// content of Figs. 2/4/5.
pub fn summary_table(title: &str, series: &[CharacterizationSeries]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "workload",
            "mean_util",
            "mean_cpi",
            "cpi_cv",
            "mean_bw_gbps",
        ],
    );
    for s in series {
        t.row(vec![
            s.workload.name().to_string(),
            f(s.mean_utilization(), 3),
            f(s.mean_cpi(), 3),
            f(s.cpi_cv(), 3),
            f(s.mean_bandwidth(), 2),
        ]);
    }
    t
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_data_steady_high_utilization() {
        let s = characterize(Workload::StructuredData, &SeriesBudget::quick()).unwrap();
        assert!(s.samples.len() >= 10);
        // Fig. 2: "close to 100%" utilization, CPI within a narrow range.
        assert!(s.mean_utilization() > 0.95, "util {}", s.mean_utilization());
        assert!(s.cpi_cv() < 0.1, "CPI CV {}", s.cpi_cv());
    }

    #[test]
    fn spark_lower_utilization_and_variable_cpi() {
        let spark = characterize(Workload::Spark, &SeriesBudget::quick()).unwrap();
        let sd = characterize(Workload::StructuredData, &SeriesBudget::quick()).unwrap();
        assert!(
            spark.mean_utilization() < 0.9,
            "Spark util {}",
            spark.mean_utilization()
        );
        assert!(
            spark.cpi_cv() > sd.cpi_cv(),
            "Spark CPI varies more: {} vs {}",
            spark.cpi_cv(),
            sd.cpi_cv()
        );
    }

    #[test]
    fn hpc_series_has_highest_bandwidth() {
        let budget = SeriesBudget::quick();
        let hpc = characterize(Workload::Bwaves, &budget).unwrap();
        let ent = characterize(Workload::Oltp, &budget).unwrap();
        assert!(hpc.mean_bandwidth() > ent.mean_bandwidth());
    }

    #[test]
    fn class_series_covers_four_workloads() {
        let series = class_series(Class::BigData, &SeriesBudget::quick()).unwrap();
        assert_eq!(series.len(), 4);
        let t = summary_table("Fig. 2", &series);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn per_sample_table_rows_match() {
        let s = characterize(Workload::Proximity, &SeriesBudget::quick()).unwrap();
        assert_eq!(s.to_table().len(), s.samples.len());
    }
}
