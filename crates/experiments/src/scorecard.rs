//! Reproduction scorecard: every paper claim checked programmatically.
//!
//! EXPERIMENTS.md narrates the paper-vs-measured comparison; this module
//! *computes* it. Each [`Check`] encodes one claim from the paper — a Tab. 3
//! error bound, a Fig. 8 ordering, a Tab. 7 equivalence — and evaluates it
//! against a fresh run, so `repro scorecard` is a one-command answer to
//! "does this reproduction still hold?".

use memsense_model::queueing::QueueingCurve;
use memsense_model::sensitivity::{
    bandwidth_sweep, default_bandwidth_deltas, default_latency_steps, equivalence,
    latency_derivative, latency_sweep,
};
use memsense_model::solver::{solve_cpi, Regime};
use memsense_model::system::SystemConfig;
use memsense_model::workload::WorkloadParams;
use memsense_workloads::Class;

use crate::calibrate::CalibratedWorkload;
use crate::classify::{class_means, clustering_agreement};
use crate::render::{f, Table};
use crate::validate::validate_calibration;
use crate::ExperimentError;

/// One verified claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Paper artifact the claim comes from ("Tab. 7", "Fig. 8", …).
    pub artifact: &'static str,
    /// The claim, in one sentence.
    pub claim: &'static str,
    /// Measured value (display form).
    pub measured: String,
    /// Expectation (display form).
    pub expected: String,
    /// Whether the claim held.
    pub pass: bool,
}

/// The full scorecard.
#[derive(Debug, Clone, PartialEq)]
pub struct Scorecard {
    /// All checks, in paper order.
    pub checks: Vec<Check>,
}

impl Scorecard {
    /// Number of passing checks.
    pub fn passed(&self) -> usize {
        self.checks.iter().filter(|c| c.pass).count()
    }

    /// Whether every check passed.
    pub fn all_pass(&self) -> bool {
        self.passed() == self.checks.len()
    }

    /// Renders the scorecard as a table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Reproduction scorecard: {}/{} claims hold",
                self.passed(),
                self.checks.len()
            ),
            &["artifact", "claim", "measured", "expected", "verdict"],
        );
        for c in &self.checks {
            t.row(vec![
                c.artifact.to_string(),
                c.claim.to_string(),
                c.measured.clone(),
                c.expected.clone(),
                if c.pass { "PASS" } else { "FAIL" }.to_string(),
            ]);
        }
        t
    }
}

/// Builds the scorecard from a completed calibration run.
///
/// The model-side checks (Figs. 8–11, Tab. 7) use the paper's published
/// Tab. 6 constants, exactly as the paper's own Sec. VI does; the
/// measured-side checks use `calibrations`.
///
/// # Errors
///
/// Propagates model/classification failures.
pub fn scorecard(calibrations: &[CalibratedWorkload]) -> Result<Scorecard, ExperimentError> {
    let mut checks = Vec::new();
    let sys = SystemConfig::paper_baseline();
    let curve = QueueingCurve::composite_default();
    let classes = WorkloadParams::all_classes();
    let (ent, big, hpc) = (&classes[0], &classes[1], &classes[2]);

    // --- Measured side -----------------------------------------------------

    let sd = calibrations
        .iter()
        .find(|c| c.workload == memsense_workloads::Workload::StructuredData);
    if let Some(sd) = sd {
        checks.push(Check {
            artifact: "Fig. 3a",
            claim: "structured data CPI fit is strongly linear",
            measured: format!("R² = {:.2}", sd.r_squared),
            expected: "R² ≥ 0.90 (paper: 0.95)".into(),
            pass: sd.r_squared >= 0.90,
        });
        let v = validate_calibration(sd.clone());
        checks.push(Check {
            artifact: "Tab. 3",
            claim: "fitted model predicts every sweep point",
            measured: format!("max |err| = {:.1}%", v.max_abs_error() * 100.0),
            expected: "≤ 5% (paper: ≤ 3%)".into(),
            pass: v.max_abs_error() <= 0.05,
        });
    }

    let means = class_means(calibrations)?;
    let get = |c: Class| means.iter().find(|m| m.class == c);
    if let (Some(e), Some(b), Some(h)) =
        (get(Class::Enterprise), get(Class::BigData), get(Class::Hpc))
    {
        checks.push(Check {
            artifact: "Fig. 6",
            claim: "blocking-factor continuum: enterprise > big data > HPC",
            measured: format!("{:.2} > {:.2} > {:.2}", e.bf, b.bf, h.bf),
            expected: "strictly decreasing".into(),
            pass: e.bf > b.bf && b.bf > h.bf,
        });
        checks.push(Check {
            artifact: "Tab. 6",
            claim: "HPC MPKI dwarfs the other classes",
            measured: format!("{:.1} vs {:.1}/{:.1}", h.mpki, e.mpki, b.mpki),
            expected: "≥ 3× big data".into(),
            pass: h.mpki >= 3.0 * b.mpki,
        });
    }
    let agreement = clustering_agreement(calibrations)?;
    checks.push(Check {
        artifact: "Fig. 6",
        claim: "unsupervised clustering recovers the usage segments",
        measured: format!("{:.0}% agreement", agreement * 100.0),
        expected: "≥ 70%".into(),
        pass: agreement >= 0.70,
    });

    // --- Model side ----------------------------------------------------------

    let regime = |w: &WorkloadParams| solve_cpi(w, &sys, &curve).map(|s| s.regime);
    checks.push(Check {
        artifact: "Sec. VI",
        claim: "baseline regimes: enterprise/big data latency limited, HPC bandwidth bound",
        measured: format!("{} / {} / {}", regime(ent)?, regime(big)?, regime(hpc)?),
        expected: "latency / latency / bandwidth".into(),
        pass: regime(ent)? == Regime::LatencyLimited
            && regime(big)? == Regime::LatencyLimited
            && regime(hpc)? == Regime::BandwidthBound,
    });

    let per10 = |w: &WorkloadParams| -> Result<f64, ExperimentError> {
        let sweep = latency_sweep(w, &sys, &curve, &default_latency_steps())?;
        let d = latency_derivative(&sweep)?;
        Ok(d.iter().map(|p| p.pct_per_unit).sum::<f64>() / d.len() as f64)
    };
    let ent10 = per10(ent)?;
    let big10 = per10(big)?;
    let hpc10 = per10(hpc)?;
    checks.push(Check {
        artifact: "Fig. 11",
        claim: "enterprise ≈ 3.5% CPI per 10 ns",
        measured: format!("{ent10:.2}%"),
        expected: "3.5% ± 0.8".into(),
        pass: (ent10 - 3.5).abs() < 0.8,
    });
    checks.push(Check {
        artifact: "Fig. 11",
        claim: "big data ≈ 2.5% CPI per 10 ns",
        measured: format!("{big10:.2}%"),
        expected: "2.5% ± 0.8".into(),
        pass: (big10 - 2.5).abs() < 0.8,
    });
    checks.push(Check {
        artifact: "Fig. 11",
        claim: "HPC shows no latency sensitivity",
        measured: format!("{hpc10:.3}%"),
        expected: "0%".into(),
        pass: hpc10.abs() < 1e-6,
    });

    let eq_ent = equivalence(ent, &sys, &curve)?;
    let eq_hpc = equivalence(hpc, &sys, &curve)?;
    checks.push(Check {
        artifact: "Tab. 7",
        claim: "10 ns ⇔ ~39.7 GB/s for enterprise",
        measured: format!(
            "{} GB/s",
            eq_ent
                .bandwidth_equivalent_of_10ns
                .map(|v| f(v, 1))
                .unwrap_or_else(|| "unbounded".into())
        ),
        expected: "39.7 ± 12 GB/s".into(),
        pass: eq_ent
            .bandwidth_equivalent_of_10ns
            .is_some_and(|v| (v - 39.7).abs() < 12.0),
    });
    checks.push(Check {
        artifact: "Tab. 7",
        claim: "HPC gains ~24% per 1 GB/s/core and nothing from latency",
        measured: format!(
            "{:.1}% / {:.1}%",
            eq_hpc.benefit_of_bandwidth_pct, eq_hpc.benefit_of_latency_pct
        ),
        expected: "24% ± 4 / 0%".into(),
        pass: (eq_hpc.benefit_of_bandwidth_pct - 24.0).abs() < 4.0
            && eq_hpc.benefit_of_latency_pct.abs() < 1e-6,
    });
    checks.push(Check {
        artifact: "Sec. VI.D",
        claim: "no latency reduction compensates HPC's bandwidth wall",
        measured: format!("{:?}", eq_hpc.latency_equivalent_of_bandwidth),
        expected: "None".into(),
        pass: eq_hpc.latency_equivalent_of_bandwidth.is_none(),
    });

    let big_sweep = bandwidth_sweep(big, &sys, &curve, &default_bandwidth_deltas())?;
    let knee = big_sweep
        .iter()
        .find(|p| p.solved.regime == Regime::BandwidthBound)
        .map(|p| p.delta);
    checks.push(Check {
        artifact: "Fig. 8",
        claim: "big data hits the bandwidth wall past ~2.5 GB/s/core removed",
        measured: format!("knee at {knee:?} GB/s/core"),
        expected: "between −2.5 and −3.5".into(),
        pass: knee.is_some_and(|k| (-3.5..=-2.0).contains(&k)),
    });

    let hpc_sweep = bandwidth_sweep(hpc, &sys, &curve, &default_bandwidth_deltas())?;
    checks.push(Check {
        artifact: "Fig. 8",
        claim: "HPC is bandwidth bound at every baseline-or-below point",
        measured: format!(
            "{}/{} points bandwidth bound",
            hpc_sweep
                .iter()
                .filter(|p| p.solved.regime == Regime::BandwidthBound)
                .count(),
            hpc_sweep.len()
        ),
        expected: "all".into(),
        pass: hpc_sweep
            .iter()
            .all(|p| p.solved.regime == Regime::BandwidthBound),
    });

    Ok(Scorecard { checks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::{calibrate_all, CalibrationBudget};
    use std::sync::OnceLock;

    fn cals() -> &'static Vec<CalibratedWorkload> {
        static CACHE: OnceLock<Vec<CalibratedWorkload>> = OnceLock::new();
        CACHE.get_or_init(|| calibrate_all(&CalibrationBudget::quick()).unwrap())
    }

    #[test]
    fn scorecard_all_claims_hold() {
        let sc = scorecard(cals()).unwrap();
        assert!(
            sc.checks.len() >= 12,
            "comprehensive coverage: {}",
            sc.checks.len()
        );
        let failing: Vec<&Check> = sc.checks.iter().filter(|c| !c.pass).collect();
        assert!(sc.all_pass(), "failing checks: {failing:#?}");
    }

    #[test]
    fn scorecard_renders() {
        let sc = scorecard(cals()).unwrap();
        let ascii = sc.to_table().to_ascii();
        assert!(ascii.contains("PASS"));
        assert!(ascii.contains("Tab. 7"));
        assert!(ascii.contains(&format!("{}/{} claims hold", sc.passed(), sc.checks.len())));
    }

    #[test]
    fn scorecard_detects_failures() {
        // Corrupt a calibration and ensure a check flips.
        let mut cals = cals().clone();
        for c in &mut cals {
            c.bf = 0.5; // destroys the BF continuum
        }
        let sc = scorecard(&cals).unwrap();
        assert!(!sc.all_pass(), "corrupted inputs must fail some check");
    }
}
