//! Parameter tables (paper Tabs. 2, 4, 5) — measured on the simulated
//! testbed, side by side with the paper's published values.

use memsense_workloads::{Class, Workload};

use crate::calibrate::CalibratedWorkload;
use crate::render::{f, pct, Table};

/// The paper's published parameter rows for comparison columns.
/// `(workload, cpi_cache, bf, mpki, wbr)`; enterprise/HPC per-workload rows
/// are the class means the paper prints (Tabs. 4/5 as published list the
/// class aggregate in our copy of the paper).
pub fn paper_reference(workload: Workload) -> (f64, f64, f64, f64) {
    use Workload::*;
    match workload {
        StructuredData => (0.89, 0.20, 5.6, 0.32),
        Nits => (0.96, 0.18, 5.0, 1.17),
        Spark => (0.90, 0.25, 6.0, 0.64),
        Proximity => (0.93, 0.03, 0.5, 0.47),
        Oltp | Jvm | Virtualization | WebCaching => (1.47, 0.41, 6.7, 0.27),
        Bwaves | Milc | Soplex | Wrf => (0.75, 0.07, 26.7, 0.27),
        // Core-bound SPEC components: the paper plots them near the origin
        // of Fig. 6 without tabulating parameters; proximity-like values
        // serve as the reference envelope.
        Povray | Perlbench => (1.0, 0.03, 0.5, 0.3),
    }
}

fn class_table(title: &str, class: Class, calibrations: &[CalibratedWorkload]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "workload",
            "CPI_cache",
            "BF",
            "BF_ci95",
            "MPKI",
            "WBR",
            "R2",
            "paper_CPI_cache",
            "paper_BF",
            "paper_MPKI",
            "paper_WBR",
        ],
    );
    // Each row cell is independent; render them on the executor in
    // calibration order (infallible jobs — the Ok type is the row itself).
    let members: Vec<&CalibratedWorkload> = calibrations
        .iter()
        .filter(|c| c.workload.class() == class)
        .collect();
    let rows = crate::executor::par_map_full(
        members,
        |_, c| format!("tables/{}", c.workload.name()),
        |c| -> Result<Vec<String>, core::convert::Infallible> {
            let (p_cpi, p_bf, p_mpki, p_wbr) = paper_reference(c.workload);
            Ok(vec![
                c.workload.name().to_string(),
                f(c.cpi_cache, 2),
                f(c.bf, 2),
                format!("[{:.2},{:.2}]", c.bf_ci95.0, c.bf_ci95.1),
                f(c.mpki, 1),
                pct(c.wbr, 0),
                f(c.r_squared, 2),
                f(p_cpi, 2),
                f(p_bf, 2),
                f(p_mpki, 1),
                pct(p_wbr, 0),
            ])
        },
    );
    for row in rows {
        let Ok(row) = row;
        t.row(row);
    }
    t
}

/// Tab. 2: big data workload parameters.
pub fn tab2(calibrations: &[CalibratedWorkload]) -> Table {
    class_table(
        "Tab. 2: workload parameters for big data",
        Class::BigData,
        calibrations,
    )
}

/// Tab. 4: enterprise workload parameters (paper columns show the class
/// mean).
pub fn tab4(calibrations: &[CalibratedWorkload]) -> Table {
    class_table(
        "Tab. 4: workload parameters for enterprise",
        Class::Enterprise,
        calibrations,
    )
}

/// Tab. 5: HPC workload parameters (paper columns show the class mean).
pub fn tab5(calibrations: &[CalibratedWorkload]) -> Table {
    class_table(
        "Tab. 5: workload parameters for HPC",
        Class::Hpc,
        calibrations,
    )
}

/// Fig. 3 data: the raw `(MPI × MP, CPI_eff)` fit points per workload.
pub fn fig3(calibrations: &[CalibratedWorkload]) -> Table {
    let mut t = Table::new(
        "Fig. 3: CPI vs per-instruction miss latency (fit points)",
        &[
            "workload",
            "core_ghz",
            "mem_mts",
            "mpi_x_mp_cycles",
            "cpi_eff",
            "fit_cpi",
        ],
    );
    for c in calibrations {
        for s in &c.samples {
            let x = s.measurement.latency_per_instruction;
            t.row(vec![
                c.workload.name().to_string(),
                f(s.core_ghz, 1),
                f(s.memory_mts, 0),
                f(x, 4),
                f(s.measurement.cpi_eff, 3),
                f(c.cpi_cache + c.bf * x, 3),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::{calibrate_all, CalibrationBudget};
    use std::sync::OnceLock;

    fn cals() -> &'static Vec<CalibratedWorkload> {
        static CACHE: OnceLock<Vec<CalibratedWorkload>> = OnceLock::new();
        CACHE.get_or_init(|| calibrate_all(&CalibrationBudget::quick()).unwrap())
    }

    #[test]
    fn tab2_has_four_big_data_rows() {
        let t = tab2(cals());
        assert_eq!(t.len(), 4);
        let ascii = t.to_ascii();
        assert!(ascii.contains("Structured Data"));
        assert!(ascii.contains("Proximity"));
    }

    #[test]
    fn tab4_has_four_rows_tab5_has_six() {
        assert_eq!(tab4(cals()).len(), 4);
        // Four SPECfp components plus the two core-bound SPEC components.
        assert_eq!(tab5(cals()).len(), 6);
    }

    #[test]
    fn fig3_has_all_sweep_points() {
        let t = fig3(cals());
        assert_eq!(t.len(), 14 * 8);
    }

    #[test]
    fn paper_reference_values() {
        assert_eq!(
            paper_reference(Workload::StructuredData),
            (0.89, 0.20, 5.6, 0.32)
        );
        assert_eq!(paper_reference(Workload::Bwaves).2, 26.7);
    }
}
