//! Capacity planning: size the memory fleet for a big-data analytics service.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```
//!
//! Scenario (the paper's intro motivation): you run an in-memory analytics
//! cluster (column store + Spark) and must choose the next hardware
//! generation's memory configuration. Channel count and speed cost money;
//! this example writes the scenario down as a `memsense-plan` spec — a
//! traffic mix, an SLA, and a hardware menu — and lets the planner sweep
//! the design space: it prunes dominated menu entries, solves the paper's
//! CPI model for every surviving candidate, sizes the fleet, and prints the
//! cost-ranked plan with the Pareto frontier over (cost, worst-class slack).
//!
//! The same spec (as JSON) drives the `memsense-plan` CLI and the serve
//! daemon's `POST /v1/plan` endpoint byte-for-byte.

use memsense::plan::spec::PlanSpec;
use memsense::plan::{planner, report};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The original single-socket sweep, restated as a plan spec: one
    // big-data class at fleet scale (1.5M requests/s, ~1M instructions
    // each — millions of users), a CPI ceiling, and the familiar six-entry
    // DDR3 menu for a 16-core (32-thread) 2.7 GHz socket. One entry is
    // priced to be dominated, to show the pruner working.
    let spec_text = r#"{
        "traffic": [
            {"workload": "big data",
             "mreq_per_s": 1.5,
             "instructions_per_request": 1e6,
             "dataset_gb": 2048,
             "sla": {"max_cpi": 8.0}}
        ],
        "sla": {"min_bandwidth_headroom": 0.05},
        "node": {"sockets": 1, "cores_per_socket": 16, "threads_per_core": 2,
                 "core_clock_ghz": 2.7, "efficiency": 0.70},
        "hardware": [
            {"name": "2ch DDR3-1333", "channels": 2, "mega_transfers": 1333,
             "unloaded_latency_ns": 75, "capacity_gb": 128, "cost": 0.6},
            {"name": "2ch DDR3-1867", "channels": 2, "mega_transfers": 1866.7,
             "unloaded_latency_ns": 75, "capacity_gb": 128, "cost": 0.7},
            {"name": "4ch DDR3-1333", "channels": 4, "mega_transfers": 1333,
             "unloaded_latency_ns": 75, "capacity_gb": 256, "cost": 0.85},
            {"name": "4ch DDR3-1333 (list price)", "channels": 4, "mega_transfers": 1333,
             "unloaded_latency_ns": 75, "capacity_gb": 256, "cost": 1.05},
            {"name": "4ch DDR3-1867", "channels": 4, "mega_transfers": 1866.7,
             "unloaded_latency_ns": 75, "capacity_gb": 256, "cost": 1.0},
            {"name": "6ch DDR3-1867", "channels": 6, "mega_transfers": 1866.7,
             "unloaded_latency_ns": 75, "capacity_gb": 384, "cost": 1.25},
            {"name": "8ch DDR3-1867", "channels": 8, "mega_transfers": 1866.7,
             "unloaded_latency_ns": 75, "capacity_gb": 512, "cost": 1.5}
        ]
    }"#;

    let spec = PlanSpec::parse(spec_text)?;
    let plan = planner::plan(&spec)?;
    println!("{}", report::render_report(&plan));

    println!(
        "(the paper's Sec. VI.D guidance: \"cost savings can be achieved by \
         reducing available bandwidth without significantly impacting \
         performance\" when the target class is not bandwidth bound — the \
         frontier above is exactly that trade, priced per node)"
    );
    Ok(())
}
