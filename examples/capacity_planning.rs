//! Capacity planning: size the memory system of a big-data analytics server.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```
//!
//! Scenario (the paper's intro motivation): you run an in-memory analytics
//! cluster (column store + Spark) and must choose the next server's memory
//! configuration. Channel count and speed cost money; this example sweeps
//! the design space with the paper's model and prints throughput per
//! configuration, the knee where the class becomes bandwidth bound, and the
//! cheapest configuration within 5% of peak performance.

use memsense::model::queueing::QueueingCurve;
use memsense::model::solver::{solve_cpi, Regime};
use memsense::model::system::SystemConfig;
use memsense::model::units::{GigaHertz, Nanoseconds};
use memsense::model::workload::WorkloadParams;

#[derive(Debug, Clone)]
struct Option_ {
    label: String,
    channels: u32,
    mts: f64,
    relative_cost: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadParams::big_data_class();
    let curve = QueueingCurve::composite_default();

    // Candidate memory configurations for a 16-core (32-thread) socket.
    let options = vec![
        Option_ {
            label: "2ch DDR3-1333".into(),
            channels: 2,
            mts: 1333.0,
            relative_cost: 0.6,
        },
        Option_ {
            label: "2ch DDR3-1867".into(),
            channels: 2,
            mts: 1866.7,
            relative_cost: 0.7,
        },
        Option_ {
            label: "4ch DDR3-1333".into(),
            channels: 4,
            mts: 1333.0,
            relative_cost: 0.85,
        },
        Option_ {
            label: "4ch DDR3-1867".into(),
            channels: 4,
            mts: 1866.7,
            relative_cost: 1.0,
        },
        Option_ {
            label: "6ch DDR3-1867".into(),
            channels: 6,
            mts: 1866.7,
            relative_cost: 1.25,
        },
        Option_ {
            label: "8ch DDR3-1867".into(),
            channels: 8,
            mts: 1866.7,
            relative_cost: 1.5,
        },
    ];

    println!("big data class on a 16-core socket; throughput = threads / CPI\n");
    println!(
        "{:<16} {:>9} {:>8} {:>8} {:>11} {:>18} {:>10}",
        "config", "BW GB/s", "CPI", "util", "throughput", "regime", "perf/cost"
    );

    let mut results = Vec::new();
    for opt in &options {
        let sys = SystemConfig::new(
            1,
            16,
            2,
            GigaHertz(2.7),
            opt.channels,
            opt.mts,
            0.70,
            Nanoseconds(75.0),
        )?;
        let solved = solve_cpi(&workload, &sys, &curve)?;
        // Relative throughput: instructions/second across threads.
        let throughput = sys.hardware_threads() as f64 * sys.core_clock().value() / solved.cpi_eff;
        results.push((opt.clone(), solved, throughput));
    }

    let best = results.iter().map(|(_, _, t)| *t).fold(f64::MIN, f64::max);
    for (opt, solved, throughput) in &results {
        println!(
            "{:<16} {:>9.1} {:>8.3} {:>7.0}% {:>10.1}G {:>18} {:>10.2}",
            opt.label,
            solved.bandwidth_demand.value(),
            solved.cpi_eff,
            solved.utilization * 100.0,
            throughput,
            solved.regime,
            throughput / best / opt.relative_cost,
        );
    }

    // Find the knee: the narrowest configuration that is NOT bandwidth bound.
    let knee = results
        .iter()
        .find(|(_, s, _)| s.regime != Regime::BandwidthBound)
        .map(|(o, _, _)| o.label.clone())
        .unwrap_or_else(|| "none".into());
    println!("\nfirst configuration free of the bandwidth wall: {knee}");

    // Cheapest within 5% of peak.
    let pick = results
        .iter()
        .filter(|(_, _, t)| *t >= 0.95 * best)
        .min_by(|a, b| a.0.relative_cost.total_cmp(&b.0.relative_cost))
        .expect("non-empty");
    println!(
        "recommendation: {} — within 5% of peak at {:.0}% of the flagship cost",
        pick.0.label,
        pick.0.relative_cost * 100.0
    );
    println!(
        "\n(the paper's Sec. VI.D guidance: \"cost savings can be achieved by \
         reducing available bandwidth without significantly impacting \
         performance\" when the target class is not bandwidth bound)"
    );
    Ok(())
}
