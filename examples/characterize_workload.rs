//! Characterize and calibrate a *custom* workload end to end — the full
//! paper methodology applied to your own instruction stream.
//!
//! ```sh
//! cargo run --release --example characterize_workload
//! ```
//!
//! This example defines a brand-new synthetic workload (a log-structured
//! KV store: hash probes + memtable appends + compaction scans), runs it on
//! the simulated testbed across the frequency × memory-speed grid, fits
//! `CPI_eff = CPI_cache + (MPI × MP) × BF`, and then asks the analytic model
//! how the workload will respond to future memory designs.

use memsense::model::queueing::QueueingCurve;
use memsense::model::sensitivity::{equivalence, latency_sweep};
use memsense::model::system::SystemConfig;
use memsense::model::workload::{Segment, WorkloadParams};
use memsense::sim::config::MemoryConfig;
use memsense::sim::{Machine, SimConfig};
use memsense::stats::fit_line;
use memsense::workloads::mix::{MixSpec, MixWorkload};

fn kv_store_spec() -> MixSpec {
    MixSpec {
        // GET path: hash-bucket walk (dependent) into a table >> LLC.
        dep_probes: 1.6,
        // PUT path: memtable append (sequential stores).
        store_lines: 0.9,
        // Background compaction: sequential scan of SSTable segments.
        seq_lines: 1.2,
        loads_per_line: 4,
        // Bloom filters and index blocks stay cache resident.
        hot_loads: 8.0,
        compute: 560,
        extra_dist: [0.50, 0.28, 0.13, 0.08, 0.01],
        ..MixSpec::base("LSM KV store")
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = 8;

    // --- Step 1: frequency × memory-speed sweep (paper Sec. V.A) ---------
    let mut xs = Vec::new(); // MPI × MP (core cycles)
    let mut ys = Vec::new(); // CPI_eff
    let mut mpki_sum = 0.0;
    let mut wbr_sum = 0.0;
    let mut n = 0.0;

    println!("sweep: core GHz × memory speed → (MPI×MP, CPI_eff)");
    for memory in [MemoryConfig::ddr3_1867(), MemoryConfig::ddr3_1333()] {
        for ghz in [2.1, 2.4, 2.7, 3.1] {
            let config = SimConfig::xeon_like(threads)
                .with_core_clock(ghz)
                .with_memory(memory);
            let streams = (0..threads)
                .map(|t| {
                    Box::new(MixWorkload::new(kv_store_spec(), 7 + t as u64))
                        as Box<dyn memsense::sim::InstructionStream>
                })
                .collect();
            let mut machine = Machine::new(config, streams)?;
            machine.run_ops(120_000);
            let m = machine
                .measure_for_ns(150_000.0)
                .expect("retired instructions");
            println!(
                "  {ghz:.1} GHz / DDR3-{:>4.0}: MPI×MP = {:>6.3}, CPI = {:.3}",
                memory.mega_transfers, m.latency_per_instruction, m.cpi_eff
            );
            xs.push(m.latency_per_instruction);
            ys.push(m.cpi_eff);
            mpki_sum += m.mpki;
            wbr_sum += m.wbr;
            n += 1.0;
        }
    }

    // --- Step 2: fit Eq. 1 (paper Fig. 3) --------------------------------
    let fit = fit_line(&xs, &ys)?;
    println!(
        "\nfit: CPI_cache = {:.3}, BF = {:.3}, R² = {:.3}",
        fit.intercept, fit.slope, fit.r_squared
    );

    let params = WorkloadParams::new(
        "LSM KV store",
        Segment::BigData,
        fit.intercept,
        fit.slope.max(0.0),
        mpki_sum / n,
        wbr_sum / n,
    )?;
    println!(
        "calibrated: MPKI = {:.2}, WBR = {:.0}%, implied MLP ≈ {:.1}",
        params.mpki,
        params.wbr * 100.0,
        params.implied_mlp()
    );

    // --- Step 3: apply the analytic model (paper Sec. VI) ----------------
    let system = SystemConfig::paper_baseline();
    let curve = QueueingCurve::composite_default();

    let sweep = latency_sweep(&params, &system, &curve, &[0.0, 10.0, 20.0, 30.0])?;
    println!("\nlatency sensitivity on the paper baseline:");
    for p in &sweep {
        println!(
            "  +{:>2.0} ns → CPI {:.3} ({:+.1}%)",
            p.delta,
            p.solved.cpi_eff,
            p.cpi_increase_pct()
        );
    }

    let e = equivalence(&params, &system, &curve)?;
    println!(
        "\nequivalence: 10 ns of latency ≈ {} of bandwidth for this workload",
        e.bandwidth_equivalent_of_10ns
            .map(|g| format!("{g:.1} GB/s"))
            .unwrap_or_else(|| "unbounded amounts".into())
    );
    println!(
        "→ like the paper's enterprise class, a pointer-chasing KV store buys \
         more from latency reduction than from extra channels."
    );
    Ok(())
}
