//! Profile a multi-phase job: per-phase counters, CPI distributions, CPI
//! stacks, and trace record/replay.
//!
//! ```sh
//! cargo run --release --example phase_profiling
//! ```
//!
//! This exercises the "toolbox" side of memsense: run a two-phase Spark-like
//! job on the simulated testbed, attribute counters to phases, summarize the
//! CPI distribution with a histogram sparkline, decompose the model CPI into
//! a stack, and show that a recorded trace replays deterministically.

use memsense::model::phases::{solve_phased, PhasedWorkload};
use memsense::model::queueing::QueueingCurve;
use memsense::model::solver::solve_cpi;
use memsense::model::system::SystemConfig;
use memsense::model::workload::{Segment, WorkloadParams};
use memsense::sim::record::Trace;
use memsense::sim::{Machine, SimConfig};
use memsense::stats::Histogram;
use memsense::workloads::mix::MixWorkload;
use memsense::workloads::multiphase::spark_job;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = 4u32;

    // --- Per-phase characterization ---------------------------------------
    println!("per-phase characterization of the two-phase job:");
    let job = spark_job(7);
    let mut phase_params = Vec::new();
    for (spec, weight) in job.phase_specs().into_iter().zip(job.weights()) {
        let cfg = SimConfig::xeon_like(threads);
        let streams = (0..threads)
            .map(|t| {
                Box::new(MixWorkload::new(spec.clone(), 7 + t as u64))
                    as Box<dyn memsense::sim::InstructionStream>
            })
            .collect();
        let mut machine = Machine::new(cfg, streams)?;
        machine.run_ops(60_000);
        let m = machine
            .measure_for_ns(100_000.0)
            .expect("instructions retired");
        println!(
            "  {:<8} weight {:>6.0}: CPI {:.3}, MPKI {:>5.2}, BW {:>5.2} GB/s",
            spec.name, weight, m.cpi_eff, m.mpki, m.bandwidth_gbps
        );
        // Approximate per-phase model params from the single measurement
        // (intercept via the measured memory term).
        let mem_term = m.mpki / 1000.0 * m.miss_penalty_cycles;
        let bf_guess = 0.3;
        phase_params.push((
            WorkloadParams::new(
                spec.name,
                Segment::BigData,
                (m.cpi_eff - mem_term * bf_guess).max(0.2),
                bf_guess,
                m.mpki,
                m.wbr,
            )?,
            weight,
        ));
    }

    // --- Whole job: CPI distribution over time -----------------------------
    let cfg = SimConfig::xeon_like(threads);
    let streams = (0..threads)
        .map(|t| Box::new(spark_job(7 + t as u64)) as Box<dyn memsense::sim::InstructionStream>)
        .collect();
    let mut machine = Machine::new(cfg, streams)?;
    machine.run_ops(60_000);
    let samples = machine.sample_series(5_000.0, 48);
    let cpis: Vec<f64> = samples.iter().map(|s| s.measurement.cpi_eff).collect();
    let hist = Histogram::from_samples(&cpis, 24)?;
    println!("\nwhole-job CPI distribution over {} samples:", cpis.len());
    println!("  {}", hist.sparkline());
    println!(
        "  90% of samples within {:.0}% of the CPI range (bimodal = phases visible)",
        hist.concentration(0.9) * 100.0
    );

    // --- Phase-weighted analytic model -------------------------------------
    let phased = PhasedWorkload::new("spark job", phase_params)?;
    let sys = SystemConfig::paper_baseline();
    let curve = QueueingCurve::composite_default();
    let solved = solve_phased(&phased, &sys, &curve)?;
    println!("\nphase-weighted model on the paper baseline:");
    for (p, s) in phased.phases().iter().zip(&solved.phases) {
        let stack = s.cpi_stack(&p.0, &sys);
        println!("  {:<8} CPI {:.3}  [{}]", p.0.name, s.cpi_eff, stack);
    }
    println!(
        "  weighted CPI {:.3} (collapsed single-phase approximation {:.3}, {:+.1}% error)",
        solved.cpi_eff,
        solved.collapsed_cpi,
        solved.collapse_error() * 100.0
    );

    // --- Record / replay ----------------------------------------------------
    let mut source = spark_job(99);
    let trace = Trace::record(&mut source, 50_000);
    println!(
        "\nrecorded {} ops ({} instructions, {} memory accesses); replay is deterministic:",
        trace.len(),
        trace.instructions(),
        trace.memory_accesses()
    );
    let run = |t: &Trace| -> Result<f64, Box<dyn std::error::Error>> {
        let cfg = SimConfig::xeon_like(1);
        let mut m = Machine::new(cfg, vec![Box::new(t.replay())])?;
        m.run_ops(40_000);
        Ok(m.measure_for_ns(50_000.0).expect("retired").cpi_eff)
    };
    let a = run(&trace)?;
    let b = run(&trace)?;
    println!(
        "  replay #1 CPI {a:.6}, replay #2 CPI {b:.6} (bit-identical: {})",
        a == b
    );

    // Sanity against the flat solver for the collapsed job.
    let flat = solve_cpi(&phased.collapsed()?, &sys, &curve)?;
    println!("\ncollapsed job regime on the baseline: {}", flat.regime);
    Ok(())
}
