//! Quickstart: predict how a workload responds to memory subsystem changes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the three moving parts of memsense in ~60 lines:
//! 1. pick (or calibrate) workload parameters,
//! 2. describe a platform,
//! 3. solve for the operating point and ask "what if".

use memsense::model::queueing::QueueingCurve;
use memsense::model::solver::solve_cpi;
use memsense::model::system::SystemConfig;
use memsense::model::units::{GigabytesPerSecond, Nanoseconds};
use memsense::model::workload::WorkloadParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Workload classes straight out of the paper's Tab. 6.
    let classes = WorkloadParams::all_classes();

    // 2. The paper's baseline platform: 8 cores (16 threads) at 2.7 GHz,
    //    four channels of DDR3-1867 at ~70% efficiency, 75 ns unloaded.
    let baseline = SystemConfig::paper_baseline();
    let curve = QueueingCurve::composite_default();

    println!(
        "baseline: {} threads, {:.1} GB/s effective ({:.2} GB/s per core), {} unloaded\n",
        baseline.hardware_threads(),
        baseline.effective_bandwidth().value(),
        baseline.bandwidth_per_core().value(),
        baseline.unloaded_latency(),
    );

    println!(
        "{:<18} {:>8} {:>10} {:>8} {:>18}",
        "class", "CPI", "BW GB/s", "util", "regime"
    );
    for class in &classes {
        let solved = solve_cpi(class, &baseline, &curve)?;
        println!(
            "{:<18} {:>8.3} {:>10.1} {:>7.0}% {:>18}",
            class.name,
            solved.cpi_eff,
            solved.bandwidth_demand.value(),
            solved.utilization * 100.0,
            solved.regime,
        );
    }

    // 3. What-if: 30 ns slower memory (e.g. a denser but slower technology)?
    let slower = baseline.clone().with_unloaded_latency(Nanoseconds(105.0))?;
    // What-if: half the memory channels?
    let narrower = baseline.clone().with_channels(2)?;

    println!("\nCPI change vs baseline:");
    println!(
        "{:<18} {:>14} {:>14}",
        "class", "+30ns latency", "half channels"
    );
    for class in &classes {
        let base = solve_cpi(class, &baseline, &curve)?;
        let slow = solve_cpi(class, &slower, &curve)?;
        let narrow = solve_cpi(class, &narrower, &curve)?;
        println!(
            "{:<18} {:>13.1}% {:>13.1}%",
            class.name,
            (slow.cpi_eff / base.cpi_eff - 1.0) * 100.0,
            (narrow.cpi_eff / base.cpi_eff - 1.0) * 100.0,
        );
    }

    // The punchline the paper closes with: bandwidth-bound workloads want
    // channels; latency-bound workloads want nanoseconds.
    let hpc = &classes[2];
    let more_bw = baseline
        .clone()
        .with_bandwidth_per_core_delta(GigabytesPerSecond(1.0))?;
    let hpc_gain =
        solve_cpi(hpc, &baseline, &curve)?.cpi_eff / solve_cpi(hpc, &more_bw, &curve)?.cpi_eff;
    println!(
        "\nHPC speedup from +1 GB/s/core: {:.1}% — provision bandwidth first, \
         then optimize latency.",
        (hpc_gain - 1.0) * 100.0
    );
    Ok(())
}
