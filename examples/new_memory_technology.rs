//! Evaluating an emerging memory technology behind a DRAM cache
//! (paper Sec. VII).
//!
//! ```sh
//! cargo run --release --example new_memory_technology
//! ```
//!
//! Scenario: a storage-class memory offers 4× the capacity at 300 ns load
//! latency (vs 75 ns DRAM). Deployed behind a DRAM "near tier", what hit
//! rate must the near tier sustain for each workload class to break even
//! with flat DRAM? And how does the latency⇄bandwidth equivalence (Tab. 7)
//! tell us which class should adopt it first?

use memsense::model::hierarchy::{break_even_near_hit, hierarchical_cpi, TieredMemory};
use memsense::model::queueing::QueueingCurve;
use memsense::model::sensitivity::equivalence;
use memsense::model::system::SystemConfig;
use memsense::model::units::{GigaHertz, Nanoseconds};
use memsense::model::workload::WorkloadParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = GigaHertz(2.7);
    let dram = Nanoseconds(75.0);
    let scm = Nanoseconds(300.0); // storage-class memory, 4x slower
    let classes = WorkloadParams::all_classes();

    println!("Eq. 5 tiered-memory analysis: DRAM near tier + 300 ns far tier\n");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>16}",
        "class", "flat CPI", "50% near", "90% near", "break-even hit"
    );
    for class in &classes {
        let flat = hierarchical_cpi(class, &TieredMemory::flat(dram)?, clock);
        let h50 = hierarchical_cpi(class, &TieredMemory::two_tier(0.5, dram, scm)?, clock);
        let h90 = hierarchical_cpi(class, &TieredMemory::two_tier(0.9, dram, scm)?, clock);
        let be = break_even_near_hit(class, dram, scm, dram, clock)?;
        println!(
            "{:<18} {:>10.3} {:>12.3} {:>12.3} {:>16}",
            class.name,
            flat,
            h50,
            h90,
            be.map(|h| format!("{:.0}%", h * 100.0))
                .unwrap_or_else(|| "unreachable".into()),
        );
    }
    println!(
        "\nWith the near tier at DRAM latency, only a 100% hit rate matches flat \
         DRAM — the interesting question is how much slowdown each class absorbs."
    );

    // Slowdown each class tolerates at a realistic 85% near-tier hit rate.
    println!("\nslowdown at an 85% near-tier hit rate:");
    for class in &classes {
        let flat = hierarchical_cpi(class, &TieredMemory::flat(dram)?, clock);
        let tiered = hierarchical_cpi(class, &TieredMemory::two_tier(0.85, dram, scm)?, clock);
        println!(
            "  {:<18} {:+.1}% CPI  (4x capacity in exchange)",
            class.name,
            (tiered / flat - 1.0) * 100.0
        );
    }

    // Tab. 7 equivalence: how many GB/s one would trade for the latency hit.
    let system = SystemConfig::paper_baseline();
    let curve = QueueingCurve::composite_default();
    println!("\nTab. 7 equivalence on the baseline platform:");
    for class in &classes {
        let e = equivalence(class, &system, &curve)?;
        println!(
            "  {:<18} 10 ns of latency is worth {}",
            class.name,
            e.bandwidth_equivalent_of_10ns
                .map(|g| format!("{g:.1} GB/s of bandwidth"))
                .unwrap_or_else(|| "more bandwidth than exists".into()),
        );
    }
    println!(
        "\nReading: the enterprise class pays the most for added latency, so it \
         needs the highest near-tier hit rate before adopting slower media; the \
         HPC class cares only about bandwidth and can adopt capacity-optimized \
         media freely if channel bandwidth is preserved."
    );
    Ok(())
}
