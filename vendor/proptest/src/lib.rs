//! Vendored offline shim for the subset of the `proptest` API that memsense
//! uses: the `proptest!` / `prop_assert!` / `prop_assume!` macros, range and
//! tuple strategies, `prop_map`, `any::<T>()`, `collection::vec`, and
//! `ProptestConfig::with_cases`.
//!
//! The build environment has no access to crates.io, so this crate stands in
//! for the real `proptest`. Unlike upstream it does **not** shrink failing
//! inputs or persist regressions; cases are generated from a deterministic
//! per-test seed so failures reproduce exactly across runs.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// `prop_assert!` failed; the test fails.
    Fail(String),
}

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [0, bound).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Seed for a named test's case stream: stable across runs and platforms.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A source of values of one type, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

// u64 spans can overflow i128 arithmetic above only at absurd widths; handle
// it directly so `0u64..(1 << 63)`-style strategies stay exact.
impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}
impl Strategy for RangeInclusive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            rng.next_u64()
        } else {
            lo + rng.below(span)
        }
    }
}

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);
impl_strategy_tuple!(A, B, C, D, E, F, G);
impl_strategy_tuple!(A, B, C, D, E, F, G, H);
impl_strategy_tuple!(A, B, C, D, E, F, G, H, I);
impl_strategy_tuple!(A, B, C, D, E, F, G, H, I, J);

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}
impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}
impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of values from `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Re-export of the runner types under their upstream path.
pub mod test_runner {
    pub use crate::{ProptestConfig, TestCaseError, TestRng};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            ::core::stringify!($a),
            ::core::stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}` (both {:?})",
            ::core::stringify!($a),
            ::core::stringify!($b),
            a
        );
    }};
}

/// Rejects the current case (skips it) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Supports the block form with an optional leading
/// `#![proptest_config(<expr>)]` followed by `#[test] fn name(arg in strategy,
/// ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rejected: u32 = 0;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new($crate::seed_for(
                        ::core::concat!(::core::module_path!(), "::", ::core::stringify!($name)),
                        case,
                    ));
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            ::core::panic!(
                                "proptest case {}/{} failed for {}: {}",
                                case + 1,
                                config.cases,
                                ::core::stringify!($name),
                                msg
                            );
                        }
                    }
                }
                let _ = rejected;
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -2.0f64..2.0, z in 1u64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn tuples_and_map(v in (0.0f64..1.0, 1u32..5).prop_map(|(a, b)| a * b as f64)) {
            prop_assert!((0.0..5.0).contains(&v));
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u64..100, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|x| *x < 100));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n > 0);
            prop_assert!(n > 0);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a = crate::seed_for("t", 0);
        let b = crate::seed_for("t", 0);
        assert_eq!(a, b);
        assert_ne!(crate::seed_for("t", 1), a);
        assert_ne!(crate::seed_for("u", 0), a);
    }
}
