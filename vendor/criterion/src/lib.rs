//! Vendored offline shim for the subset of the `criterion` API that the
//! memsense bench crate uses: `Criterion::{default, sample_size,
//! bench_function, benchmark_group}`, `Bencher::iter`, benchmark groups with
//! `throughput`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so this crate stands in
//! for the real `criterion`. It measures wall-clock time with `std::time`
//! and prints a one-line summary per benchmark (median of the collected
//! samples) instead of criterion's full statistical report.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which is what this is).
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting one sample per configured sample-size slot.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up run outside the measurement window.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (upstream flushes reports here; the shim is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    let median = b.median();
    match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            let per_sec = n as f64 / median.as_secs_f64();
            println!("bench {name:<48} median {median:>12.3?}  ({per_sec:.3e} elem/s)");
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            let per_sec = n as f64 / median.as_secs_f64();
            println!("bench {name:<48} median {median:>12.3?}  ({per_sec:.3e} B/s)");
        }
        _ => println!("bench {name:<48} median {median:>12.3?}"),
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(c: &mut Criterion) {
        c.bench_function("toy", |b| b.iter(|| black_box(2 + 2)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_function("inner", |b| b.iter(|| black_box((0..4).sum::<u64>())));
        g.finish();
    }

    criterion_group!(
        name = shim;
        config = Criterion::default().sample_size(3);
        targets = toy
    );

    #[test]
    fn group_runs() {
        shim();
    }
}
