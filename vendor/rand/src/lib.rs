//! Vendored offline shim for the subset of the `rand` 0.8 API that memsense
//! uses: `rngs::SmallRng`, `Rng::{gen, gen_range, gen_bool}`, and
//! `SeedableRng::seed_from_u64`.
//!
//! The build environment has no access to crates.io, so this crate stands in
//! for the real `rand`. `SmallRng` is the same generator family the real
//! crate uses on 64-bit platforms (xoshiro256++ seeded via SplitMix64), so
//! statistical quality matches; exact output streams are not guaranteed to
//! match the upstream crate and nothing in the workspace relies on them —
//! only on per-seed determinism, which this shim provides.

#![forbid(unsafe_code)]

/// Low-level source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++ (the same
    /// algorithm the real `rand` crate's `SmallRng` uses on 64-bit targets).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    trait NextPub {
        fn next_u64_pub(&mut self) -> u64;
    }
    impl NextPub for SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let f: f64 = r.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
